"""Execution runtime gluing a synthesized driver to a target OS.

One instance per (synthesized driver, target OS) pair: owns the IR
environment over the target machine and performs stdcall invocations of
recovered entry points, routing their OS API calls through the target OS's
adaptation table.  Entry points execute through a shared
:class:`~repro.ir.backend.ExecutionBackend` -- generated-source compiled
blocks by default, the tree-walking interpreter when ``exec_backend`` is
``"interp"`` (the differential reference and ablation baseline).
"""

from repro.ir.backend import get_backend
from repro.ir.interp import IrEnv
from repro.isa.registers import REG_SP
from repro.layout import STACK_TOP


class SyntheticDriverRuntime:
    """Runs recovered IR functions on a target OS's machine."""

    def __init__(self, driver, target_os, exec_backend=None,
                 exec_superblocks=None):
        self.driver = driver
        self.os = target_os
        self.backend = get_backend(exec_backend)
        #: superblock-tier gate for the compiled backend (``None``
        #: follows the ``REVNIC_SUPERBLOCKS`` environment default)
        self.superblocks = exec_superblocks
        self.env = IrEnv.for_machine(target_os.machine)
        #: total IR ops retired by synthesized code (perf-model input)
        self.env.ops_retired = 0
        #: entry-point invocations by role (fabric per-endpoint accounting)
        self.call_counts = {}
        self._map_driver_image()

    def _map_driver_image(self):
        """Map the regions the recovered code's absolute addresses expect
        (driver data/bss live at their original virtual addresses --
        synthesized code preserves the original pointer arithmetic)."""
        from repro.layout import TEXT_BASE, page_align

        machine = self.os.machine
        if machine.memory.is_mapped(TEXT_BASE):
            return
        # Reserve a generous window covering text+data+bss images.
        machine.memory.map_region(TEXT_BASE, 0x40000, "synth-driver-image")

    def seed_data_image(self, image, loaded_base=None):
        """Copy the original image's data segment into the target machine
        (the template's "adapt the driver's data structures" step: constant
        tables and strings the recovered code reads live here)."""
        from repro.layout import TEXT_BASE, page_align

        text_base = loaded_base or TEXT_BASE
        data_base = text_base + page_align(max(len(image.text), 1))
        if image.data:
            self.os.machine.memory.write_bytes(data_base, image.data)

    @property
    def ops_retired(self):
        return self.env.ops_retired

    def call(self, role, args, max_blocks=200_000):
        """Invoke entry point ``role`` with ``args`` (after the context)."""
        self.call_counts[role] = self.call_counts.get(role, 0) + 1
        self.env.regs[:] = [0] * 16
        self.env.regs[REG_SP] = STACK_TOP
        return self.driver.run_entry(role, self.env, list(args), self.os,
                                     max_blocks=max_blocks,
                                     backend=self.backend,
                                     superblocks=self.superblocks)

    def call_address(self, entry, args, max_blocks=200_000):
        """Invoke an arbitrary recovered function by address."""
        self.env.regs[:] = [0] * 16
        self.env.regs[REG_SP] = STACK_TOP
        return self.driver.run_function(entry, self.env, list(args),
                                        self.os, max_blocks=max_blocks,
                                        backend=self.backend,
                                        superblocks=self.superblocks)
