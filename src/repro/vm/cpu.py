"""Concrete R32 CPU: per-instruction interpreter plus a DBT mode.

Two execution tiers behind one :meth:`Cpu.run`:

* the historical **per-instruction interpreter** (``exec_backend=None`` or
  ``"step"``): fetch/decode (with a decode cache) and dispatch one
  instruction at a time;
* **DBT mode** (``exec_backend="compiled"`` or ``"interp"``): translate a
  whole block once through the caching
  :class:`~repro.dbt.translator.Translator`, execute it through an
  :class:`~repro.ir.backend.ExecutionBackend` (generated-source compiled
  functions by default), and chain block to block.  Counter semantics
  (``instret``, ``io_ops``, ``mem_ops``) and observable behaviour are
  identical to the interpreter on any run that returns to the OS.

Both tiers read guest code through caches; :meth:`Cpu.code_changed` is the
single invalidation hook loaders call after (re)writing code.
"""

import enum

from repro.errors import DecodeError, InvalidInstruction, VmFault
from repro.isa.encoding import INSTR_SIZE, NO_REG, decode
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_REGS, REG_SP
from repro.layout import RETURN_TO_OS, import_index

_MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as signed."""
    return value - (1 << 32) if value & 0x8000_0000 else value


class ExitReason(enum.Enum):
    """Why :meth:`Cpu.run` stopped."""

    HALT = "halt"
    RETURNED_TO_OS = "returned-to-os"
    STEP_LIMIT = "step-limit"


class CpuExit(Exception):
    """Raised internally to unwind out of the execution loop."""

    def __init__(self, reason):
        self.reason = reason
        super().__init__(reason.value)


class Cpu:
    """Interprets R32 machine code against a :class:`~repro.vm.bus.Bus`.

    ``import_handler`` is invoked for ``CALL``s into the import-thunk
    window; it receives ``(cpu, import_index)`` and must return the number
    of 4-byte stack arguments consumed (stdcall callee-clean).

    ``exec_backend`` selects the execution tier: ``None`` / ``"step"`` for
    the per-instruction interpreter, ``"compiled"`` / ``"interp"`` (or an
    :class:`~repro.ir.backend.ExecutionBackend`) for DBT mode.

    ``exec_superblocks`` controls the superblock tier layered on the
    compiled backend: ``None`` follows the ``REVNIC_SUPERBLOCKS``
    environment default, ``True``/``False`` force it, and a
    :class:`~repro.ir.superblock.SuperblockConfig` enables it with
    explicit formation knobs.
    """

    def __init__(self, bus, import_handler=None, exec_backend=None,
                 exec_superblocks=None):
        self.bus = bus
        self.import_handler = import_handler
        self.exec_backend = None if exec_backend == "step" else exec_backend
        self.exec_superblocks = exec_superblocks
        self.regs = [0] * NUM_REGS
        self.pc = 0
        #: Retired instruction count (performance-model input).
        self.instret = 0
        #: Device (port/MMIO) access count.
        self.io_ops = 0
        #: Regular memory access count.
        self.mem_ops = 0
        self._decode_cache = {}
        self._translator = None
        self._sb_manager = None

    # ------------------------------------------------------------------
    # Register / stack helpers

    @property
    def sp(self):
        return self.regs[REG_SP]

    @sp.setter
    def sp(self, value):
        self.regs[REG_SP] = value & _MASK32

    def push(self, value):
        """Push a 32-bit value."""
        self.sp = (self.sp - 4) & _MASK32
        self.bus.memory.write(self.sp, 4, value)

    def pop(self):
        """Pop a 32-bit value."""
        value = self.bus.memory.read(self.sp, 4)
        self.sp = (self.sp + 4) & _MASK32
        return value

    def read_stack_arg(self, slot):
        """Read stdcall argument ``slot`` (0-based) relative to the current
        ``sp`` (valid immediately after a CALL pushed the return address)."""
        return self.bus.memory.read(self.sp + 4 + 4 * slot, 4)

    def code_changed(self):
        """One invalidation hook for every code-derived cache.

        Loaders call this after (re)writing guest code; it drops both the
        per-instruction decode cache and DBT mode's translated/compiled
        blocks, so neither tier can serve stale translations.
        """
        self._decode_cache.clear()
        if self._translator is not None:
            self._translator.invalidate()
        if self._sb_manager is not None:
            self._sb_manager.invalidate()

    def invalidate_decode_cache(self):
        """Backward-compatible alias for :meth:`code_changed`."""
        self.code_changed()

    # ------------------------------------------------------------------
    # Execution

    def run(self, max_steps=5_000_000):
        """Run until HALT, a return to the OS, or the step limit.

        Returns the :class:`ExitReason`.  Guest faults propagate as
        :class:`~repro.errors.VmFault`.
        """
        if self.exec_backend is not None and self.exec_backend != "step":
            return self._run_dbt(max_steps)
        steps = 0
        try:
            while steps < max_steps:
                self.step()
                steps += 1
        except CpuExit as exit_info:
            return exit_info.reason
        return ExitReason.STEP_LIMIT

    def _superblock_manager(self, backend):
        """The lazily built superblock manager, or ``None`` when the
        tier is off (non-compiled backend, or disabled by the
        ``exec_superblocks`` setting / environment default)."""
        if getattr(backend, "name", None) != "compiled":
            return None
        setting = self.exec_superblocks
        if setting is None:
            from repro.ir.superblock import superblocks_enabled
            if not superblocks_enabled():
                return None
            config = None
        elif setting is False:
            return None
        elif setting is True:
            config = None
        else:
            config = setting
        if self._sb_manager is None:
            from repro.ir.superblock import SuperblockManager
            self._sb_manager = SuperblockManager(
                self._translator.get, "dynamic",
                read_code=self.bus.memory.read_bytes, config=config,
                epoch_source=self.bus.memory)
        return self._sb_manager

    def _run_dbt(self, max_steps):
        """DBT mode: translate once, execute through the backend, chain.

        The translator revalidates a cached block's bytes before serving
        it (mid-block patches retranslate); the backend then runs the
        block's compiled function (or tree-walks it) against an adapter
        that drives this CPU's registers, bus, and counters.  With the
        compiled backend, hot heads additionally dispatch through the
        superblock tier (:mod:`repro.ir.superblock`): one fused function
        covering a profiled chain of blocks, revalidated against guest
        bytes before every run and exiting at the exact block boundary
        per-block dispatch would reach on any violated assumption.
        """
        from repro.dbt.translator import Translator
        from repro.ir.backend import get_backend

        if self._translator is None:
            self._translator = Translator(self.bus.memory.read_bytes)
        get_block = self._translator.get
        backend = get_backend(self.exec_backend)
        run = backend.run
        manager = self._superblock_manager(backend)
        # Fresh adapter per run: callers may swap the register list
        # between runs (NdisEnv.invoke restores saved registers).
        env = _CpuEnv(self)
        steps = 0
        try:
            while steps < max_steps:
                sb = manager.lookup(self.pc) if manager is not None \
                    else None
                if sb is not None:
                    result, members, instrs = sb.fn(
                        env, max_steps - steps, max_steps)
                    steps += instrs
                    last_block = sb.blocks[members - 1]
                else:
                    try:
                        block = get_block(self.pc)
                    except DecodeError as exc:
                        # Undecodable first instruction: the per-step
                        # tier wraps decode failures the same way.
                        # Fetch faults (MemoryFault from unmapped code)
                        # propagate raw, exactly like the interpreter's
                        # _fetch.
                        raise InvalidInstruction(
                            "bad instruction at 0x%08x: %s"
                            % (self.pc, exc)) from exc
                    result = run(block, env)
                    steps += len(block.instr_addrs)
                    last_block = block
                kind = result.kind
                if kind == "jump":
                    self.pc = result.target
                elif kind == "call":
                    target = result.target
                    slot = import_index(target)
                    if slot is None:
                        self.pc = target
                    else:
                        # The interpreter dispatches imports with ``pc``
                        # still at the CALL site (ApiCallRecord.caller_pc
                        # reads it); the terminating block's last
                        # instruction is that CALL.
                        self.pc = last_block.instr_addrs[-1]
                        self.pc = self._dispatch_import(slot)
                elif kind == "ret":
                    if result.target == RETURN_TO_OS:
                        self.pc = result.target
                        raise CpuExit(ExitReason.RETURNED_TO_OS)
                    self.pc = result.target
                else:  # halt
                    self.pc = last_block.instr_addrs[-1]
                    raise CpuExit(ExitReason.HALT)
        except CpuExit as exit_info:
            return exit_info.reason
        return ExitReason.STEP_LIMIT

    def step(self):
        """Execute one instruction."""
        instr = self._fetch(self.pc)
        next_pc = (self.pc + INSTR_SIZE) & _MASK32
        self.instret += 1
        op = instr.op
        regs = self.regs

        if op == Op.NOP:
            pass
        elif op == Op.HALT:
            raise CpuExit(ExitReason.HALT)
        elif op == Op.MOV:
            regs[instr.a] = regs[instr.b]
        elif op == Op.MOVI:
            regs[instr.a] = instr.imm
        elif op == Op.LD8 or op == Op.LD16 or op == Op.LD32:
            width = 1 if op == Op.LD8 else 2 if op == Op.LD16 else 4
            address = (regs[instr.b] + instr.imm) & _MASK32
            regs[instr.a] = self.bus.mem_read(address, width)
            self._count_access(address)
        elif op == Op.ST8 or op == Op.ST16 or op == Op.ST32:
            width = 1 if op == Op.ST8 else 2 if op == Op.ST16 else 4
            address = (regs[instr.a] + instr.imm) & _MASK32
            self.bus.mem_write(address, width, regs[instr.b])
            self._count_access(address)
        elif op == Op.PUSH:
            self.push(regs[instr.a])
            self.mem_ops += 1
        elif op == Op.POP:
            regs[instr.a] = self.pop()
            self.mem_ops += 1
        elif op in _ALU_FUNCS:
            src2 = instr.imm if instr.c == NO_REG else regs[instr.c]
            regs[instr.a] = _ALU_FUNCS[op](regs[instr.b], src2)
        elif op == Op.NOT:
            regs[instr.a] = (~regs[instr.b]) & _MASK32
        elif op == Op.NEG:
            regs[instr.a] = (-regs[instr.b]) & _MASK32
        elif op in _BRANCH_FUNCS:
            if _BRANCH_FUNCS[op](regs[instr.a], regs[instr.b]):
                next_pc = instr.imm
        elif op == Op.JMP:
            next_pc = instr.imm
        elif op == Op.JMPR:
            next_pc = regs[instr.a]
        elif op == Op.CALL or op == Op.CALLR:
            target = instr.imm if op == Op.CALL else regs[instr.a]
            self.push(next_pc)
            self.mem_ops += 1
            slot = import_index(target)
            if slot is not None:
                next_pc = self._dispatch_import(slot)
            else:
                next_pc = target
        elif op == Op.RET:
            return_pc = self.pop()
            self.mem_ops += 1
            self.sp = (self.sp + instr.imm) & _MASK32
            if return_pc == RETURN_TO_OS:
                self.pc = return_pc
                raise CpuExit(ExitReason.RETURNED_TO_OS)
            next_pc = return_pc
        elif op == Op.IN8 or op == Op.IN16 or op == Op.IN32:
            width = 1 if op == Op.IN8 else 2 if op == Op.IN16 else 4
            port = (regs[instr.b] + instr.imm) & _MASK32
            regs[instr.a] = self.bus.io_read(port, width)
            self.io_ops += 1
        elif op == Op.OUT8 or op == Op.OUT16 or op == Op.OUT32:
            width = 1 if op == Op.OUT8 else 2 if op == Op.OUT16 else 4
            port = (regs[instr.a] + instr.imm) & _MASK32
            self.bus.io_write(port, width, regs[instr.b])
            self.io_ops += 1
        else:  # pragma: no cover - decode rejects unknown opcodes
            raise InvalidInstruction("unimplemented opcode %s" % op)

        self.pc = next_pc

    def _fetch(self, address):
        instr = self._decode_cache.get(address)
        if instr is None:
            raw = self.bus.memory.read_bytes(address, INSTR_SIZE)
            try:
                instr = decode(raw)
            except Exception as exc:
                raise InvalidInstruction(
                    "bad instruction at 0x%08x: %s" % (address, exc)) from exc
            self._decode_cache[address] = instr
        return instr

    def _count_access(self, address):
        if self.bus.is_device_address(address):
            self.io_ops += 1
        else:
            self.mem_ops += 1

    def _dispatch_import(self, slot):
        if self.import_handler is None:
            raise VmFault("import call with no handler installed")
        nargs = self.import_handler(self, slot)
        return_pc = self.pop()
        self.sp = (self.sp + 4 * int(nargs)) & _MASK32
        if return_pc == RETURN_TO_OS:
            self.pc = return_pc
            raise CpuExit(ExitReason.RETURNED_TO_OS)
        return return_pc


def _shift_amount(value):
    return value & 31


_ALU_FUNCS = {
    Op.ADD: lambda a, b: (a + b) & _MASK32,
    Op.SUB: lambda a, b: (a - b) & _MASK32,
    Op.AND: lambda a, b: a & b & _MASK32,
    Op.OR: lambda a, b: (a | b) & _MASK32,
    Op.XOR: lambda a, b: (a ^ b) & _MASK32,
    Op.SHL: lambda a, b: (a << _shift_amount(b)) & _MASK32,
    Op.SHR: lambda a, b: (a & _MASK32) >> _shift_amount(b),
    Op.SAR: lambda a, b: (to_signed(a) >> _shift_amount(b)) & _MASK32,
    Op.MUL: lambda a, b: (a * b) & _MASK32,
    Op.DIVU: lambda a, b: _divu(a, b),
    Op.REMU: lambda a, b: _remu(a, b),
}

_BRANCH_FUNCS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Op.BLTU: lambda a, b: a < b,
    Op.BGEU: lambda a, b: a >= b,
}


def _divu(a, b):
    if b == 0:
        raise VmFault("divide by zero")
    return (a // b) & _MASK32


def _remu(a, b):
    if b == 0:
        raise VmFault("divide by zero")
    return (a % b) & _MASK32


class _CpuEnv:
    """IrEnv-compatible adapter over a :class:`Cpu` for DBT mode.

    Shares the CPU's register list and bus accessors, and proxies the
    block-execution counters onto the CPU's own so DBT-mode counts are
    indistinguishable from the per-instruction interpreter's (the IR makes
    stack traffic explicit loads/stores, which land in ``mem_ops`` exactly
    like PUSH/POP/CALL/RET accounting).
    """

    __slots__ = ("cpu", "regs", "mem_read", "mem_write", "io_read",
                 "io_write", "is_device_address", "ops_retired")

    def __init__(self, cpu):
        self.cpu = cpu
        self.regs = cpu.regs
        bus = cpu.bus
        self.mem_read = bus.mem_read
        self.mem_write = bus.mem_write
        self.io_read = bus.io_read
        self.io_write = bus.io_write
        self.is_device_address = bus.is_device_address
        #: IR ops retired; the CPU's unit of account is instructions
        #: (``instret``), so this stays adapter-local.
        self.ops_retired = 0

    @property
    def instrs_retired(self):
        return self.cpu.instret

    @instrs_retired.setter
    def instrs_retired(self, value):
        self.cpu.instret = value

    @property
    def io_ops(self):
        return self.cpu.io_ops

    @io_ops.setter
    def io_ops(self, value):
        self.cpu.io_ops = value

    @property
    def mem_ops(self):
        return self.cpu.mem_ops

    @mem_ops.setter
    def mem_ops(self, value):
        self.cpu.mem_ops = value
