"""Concrete R32 CPU interpreter."""

import enum

from repro.errors import InvalidInstruction, VmFault
from repro.isa.encoding import INSTR_SIZE, NO_REG, decode
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_REGS, REG_SP
from repro.layout import RETURN_TO_OS, import_index

_MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as signed."""
    return value - (1 << 32) if value & 0x8000_0000 else value


class ExitReason(enum.Enum):
    """Why :meth:`Cpu.run` stopped."""

    HALT = "halt"
    RETURNED_TO_OS = "returned-to-os"
    STEP_LIMIT = "step-limit"


class CpuExit(Exception):
    """Raised internally to unwind out of the execution loop."""

    def __init__(self, reason):
        self.reason = reason
        super().__init__(reason.value)


class Cpu:
    """Interprets R32 machine code against a :class:`~repro.vm.bus.Bus`.

    ``import_handler`` is invoked for ``CALL``s into the import-thunk
    window; it receives ``(cpu, import_index)`` and must return the number
    of 4-byte stack arguments consumed (stdcall callee-clean).
    """

    def __init__(self, bus, import_handler=None):
        self.bus = bus
        self.import_handler = import_handler
        self.regs = [0] * NUM_REGS
        self.pc = 0
        #: Retired instruction count (performance-model input).
        self.instret = 0
        #: Device (port/MMIO) access count.
        self.io_ops = 0
        #: Regular memory access count.
        self.mem_ops = 0
        self._decode_cache = {}

    # ------------------------------------------------------------------
    # Register / stack helpers

    @property
    def sp(self):
        return self.regs[REG_SP]

    @sp.setter
    def sp(self, value):
        self.regs[REG_SP] = value & _MASK32

    def push(self, value):
        """Push a 32-bit value."""
        self.sp = (self.sp - 4) & _MASK32
        self.bus.memory.write(self.sp, 4, value)

    def pop(self):
        """Pop a 32-bit value."""
        value = self.bus.memory.read(self.sp, 4)
        self.sp = (self.sp + 4) & _MASK32
        return value

    def read_stack_arg(self, slot):
        """Read stdcall argument ``slot`` (0-based) relative to the current
        ``sp`` (valid immediately after a CALL pushed the return address)."""
        return self.bus.memory.read(self.sp + 4 + 4 * slot, 4)

    def invalidate_decode_cache(self):
        """Drop cached decodes (after loading new code)."""
        self._decode_cache.clear()

    # ------------------------------------------------------------------
    # Execution

    def run(self, max_steps=5_000_000):
        """Run until HALT, a return to the OS, or the step limit.

        Returns the :class:`ExitReason`.  Guest faults propagate as
        :class:`~repro.errors.VmFault`.
        """
        steps = 0
        try:
            while steps < max_steps:
                self.step()
                steps += 1
        except CpuExit as exit_info:
            return exit_info.reason
        return ExitReason.STEP_LIMIT

    def step(self):
        """Execute one instruction."""
        instr = self._fetch(self.pc)
        next_pc = (self.pc + INSTR_SIZE) & _MASK32
        self.instret += 1
        op = instr.op
        regs = self.regs

        if op == Op.NOP:
            pass
        elif op == Op.HALT:
            raise CpuExit(ExitReason.HALT)
        elif op == Op.MOV:
            regs[instr.a] = regs[instr.b]
        elif op == Op.MOVI:
            regs[instr.a] = instr.imm
        elif op == Op.LD8 or op == Op.LD16 or op == Op.LD32:
            width = 1 if op == Op.LD8 else 2 if op == Op.LD16 else 4
            address = (regs[instr.b] + instr.imm) & _MASK32
            regs[instr.a] = self.bus.mem_read(address, width)
            self._count_access(address)
        elif op == Op.ST8 or op == Op.ST16 or op == Op.ST32:
            width = 1 if op == Op.ST8 else 2 if op == Op.ST16 else 4
            address = (regs[instr.a] + instr.imm) & _MASK32
            self.bus.mem_write(address, width, regs[instr.b])
            self._count_access(address)
        elif op == Op.PUSH:
            self.push(regs[instr.a])
            self.mem_ops += 1
        elif op == Op.POP:
            regs[instr.a] = self.pop()
            self.mem_ops += 1
        elif op in _ALU_FUNCS:
            src2 = instr.imm if instr.c == NO_REG else regs[instr.c]
            regs[instr.a] = _ALU_FUNCS[op](regs[instr.b], src2)
        elif op == Op.NOT:
            regs[instr.a] = (~regs[instr.b]) & _MASK32
        elif op == Op.NEG:
            regs[instr.a] = (-regs[instr.b]) & _MASK32
        elif op in _BRANCH_FUNCS:
            if _BRANCH_FUNCS[op](regs[instr.a], regs[instr.b]):
                next_pc = instr.imm
        elif op == Op.JMP:
            next_pc = instr.imm
        elif op == Op.JMPR:
            next_pc = regs[instr.a]
        elif op == Op.CALL or op == Op.CALLR:
            target = instr.imm if op == Op.CALL else regs[instr.a]
            self.push(next_pc)
            self.mem_ops += 1
            slot = import_index(target)
            if slot is not None:
                next_pc = self._dispatch_import(slot)
            else:
                next_pc = target
        elif op == Op.RET:
            return_pc = self.pop()
            self.mem_ops += 1
            self.sp = (self.sp + instr.imm) & _MASK32
            if return_pc == RETURN_TO_OS:
                self.pc = return_pc
                raise CpuExit(ExitReason.RETURNED_TO_OS)
            next_pc = return_pc
        elif op == Op.IN8 or op == Op.IN16 or op == Op.IN32:
            width = 1 if op == Op.IN8 else 2 if op == Op.IN16 else 4
            port = (regs[instr.b] + instr.imm) & _MASK32
            regs[instr.a] = self.bus.io_read(port, width)
            self.io_ops += 1
        elif op == Op.OUT8 or op == Op.OUT16 or op == Op.OUT32:
            width = 1 if op == Op.OUT8 else 2 if op == Op.OUT16 else 4
            port = (regs[instr.a] + instr.imm) & _MASK32
            self.bus.io_write(port, width, regs[instr.b])
            self.io_ops += 1
        else:  # pragma: no cover - decode rejects unknown opcodes
            raise InvalidInstruction("unimplemented opcode %s" % op)

        self.pc = next_pc

    def _fetch(self, address):
        instr = self._decode_cache.get(address)
        if instr is None:
            raw = self.bus.memory.read_bytes(address, INSTR_SIZE)
            try:
                instr = decode(raw)
            except Exception as exc:
                raise InvalidInstruction(
                    "bad instruction at 0x%08x: %s" % (address, exc)) from exc
            self._decode_cache[address] = instr
        return instr

    def _count_access(self, address):
        if self.bus.is_device_address(address):
            self.io_ops += 1
        else:
            self.mem_ops += 1

    def _dispatch_import(self, slot):
        if self.import_handler is None:
            raise VmFault("import call with no handler installed")
        nargs = self.import_handler(self, slot)
        return_pc = self.pop()
        self.sp = (self.sp + 4 * int(nargs)) & _MASK32
        if return_pc == RETURN_TO_OS:
            self.pc = return_pc
            raise CpuExit(ExitReason.RETURNED_TO_OS)
        return return_pc


def _shift_amount(value):
    return value & 31


_ALU_FUNCS = {
    Op.ADD: lambda a, b: (a + b) & _MASK32,
    Op.SUB: lambda a, b: (a - b) & _MASK32,
    Op.AND: lambda a, b: a & b & _MASK32,
    Op.OR: lambda a, b: (a | b) & _MASK32,
    Op.XOR: lambda a, b: (a ^ b) & _MASK32,
    Op.SHL: lambda a, b: (a << _shift_amount(b)) & _MASK32,
    Op.SHR: lambda a, b: (a & _MASK32) >> _shift_amount(b),
    Op.SAR: lambda a, b: (to_signed(a) >> _shift_amount(b)) & _MASK32,
    Op.MUL: lambda a, b: (a * b) & _MASK32,
    Op.DIVU: lambda a, b: _divu(a, b),
    Op.REMU: lambda a, b: _remu(a, b),
}

_BRANCH_FUNCS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Op.BLTU: lambda a, b: a < b,
    Op.BGEU: lambda a, b: a >= b,
}


def _divu(a, b):
    if b == 0:
        raise VmFault("divide by zero")
    return (a // b) & _MASK32


def _remu(a, b):
    if b == 0:
        raise VmFault("divide by zero")
    return (a % b) & _MASK32
