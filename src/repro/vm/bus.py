"""I/O bus: routes port I/O and MMIO accesses to device models.

The bus is the point where the paper's "VM catches all hardware accesses"
property comes from: any access through :meth:`Bus.mem_read` /
:meth:`Bus.mem_write` that falls in the MMIO window is a *device* access,
everything else is regular memory.  RevNIC's wiretap taps exactly this
boundary to classify memory operations (paper section 2).
"""

from dataclasses import dataclass

from repro.errors import BusError
from repro.layout import is_mmio


@dataclass(frozen=True)
class PortRange:
    """A claimed range in the port-I/O space."""

    base: int
    size: int
    device: object


@dataclass(frozen=True)
class MmioRange:
    """A claimed range in the MMIO window."""

    base: int
    size: int
    device: object


class Bus:
    """Port + MMIO router in front of :class:`~repro.vm.memory.Memory`."""

    def __init__(self, memory):
        self.memory = memory
        self._ports = []
        self._mmio = []
        #: Optional observer called as ``(kind, address, width, value,
        #: is_write)`` for every device access; RevNIC's wiretap hooks this.
        self.observer = None

    # ------------------------------------------------------------------
    # Device registration

    def attach_ports(self, base, size, device):
        """Claim ``[base, base+size)`` in port space for ``device``."""
        for existing in self._ports:
            if base < existing.base + existing.size and existing.base < base + size:
                raise ValueError("port range overlap at 0x%x" % base)
        self._ports.append(PortRange(base, size, device))

    def attach_mmio(self, base, size, device):
        """Claim ``[base, base+size)`` in the MMIO window for ``device``."""
        if not is_mmio(base) or not is_mmio(base + size - 1):
            raise ValueError("MMIO range outside the MMIO window")
        for existing in self._mmio:
            if base < existing.base + existing.size and existing.base < base + size:
                raise ValueError("MMIO range overlap at 0x%x" % base)
        self._mmio.append(MmioRange(base, size, device))

    def _find_port(self, port):
        for entry in self._ports:
            if entry.base <= port < entry.base + entry.size:
                return entry
        return None

    def _find_mmio(self, address):
        for entry in self._mmio:
            if entry.base <= address < entry.base + entry.size:
                return entry
        return None

    # ------------------------------------------------------------------
    # Port I/O

    def io_read(self, port, width):
        """Dispatch an ``IN`` instruction."""
        entry = self._find_port(port)
        if entry is None:
            raise BusError("IN from unclaimed port 0x%x" % port)
        value = entry.device.io_read(port - entry.base, width)
        self._observe("port", port, width, value, False)
        return value

    def io_write(self, port, width, value):
        """Dispatch an ``OUT`` instruction."""
        entry = self._find_port(port)
        if entry is None:
            raise BusError("OUT to unclaimed port 0x%x" % port)
        self._observe("port", port, width, value, True)
        entry.device.io_write(port - entry.base, width, value)

    # ------------------------------------------------------------------
    # Memory (RAM or MMIO)

    def mem_read(self, address, width):
        """Read memory, routing MMIO-window addresses to devices."""
        if is_mmio(address):
            entry = self._find_mmio(address)
            if entry is None:
                raise BusError("MMIO read from unclaimed 0x%08x" % address)
            value = entry.device.mmio_read(address - entry.base, width)
            self._observe("mmio", address, width, value, False)
            return value
        return self.memory.read(address, width)

    def mem_write(self, address, width, value):
        """Write memory, routing MMIO-window addresses to devices."""
        if is_mmio(address):
            entry = self._find_mmio(address)
            if entry is None:
                raise BusError("MMIO write to unclaimed 0x%08x" % address)
            self._observe("mmio", address, width, value, True)
            entry.device.mmio_write(address - entry.base, width, value)
            return
        self.memory.write(address, width, value)

    def is_device_address(self, address):
        """True when a load/store at ``address`` would hit a device."""
        return is_mmio(address)

    # ------------------------------------------------------------------
    # DMA (devices reading/writing guest RAM directly)

    def dma_read(self, address, size):
        """Device-initiated read of guest RAM (descriptor/buffer fetch)."""
        return self.memory.read_bytes(address, size)

    def dma_write(self, address, data):
        """Device-initiated write to guest RAM (received frame, status)."""
        self.memory.write_bytes(address, data)

    def _observe(self, kind, address, width, value, is_write):
        if self.observer is not None:
            self.observer(kind, address, width, value, is_write)
