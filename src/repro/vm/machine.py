"""Machine facade: memory + bus + CPU + interrupt lines in one object."""

from repro.layout import HEAP_BASE, HEAP_LIMIT, STACK_LIMIT, STACK_TOP
from repro.vm.bus import Bus
from repro.vm.cpu import Cpu
from repro.vm.memory import Memory


class Machine:
    """A complete guest machine.

    Owns the standard region map (heap + stack; the loader adds the driver
    image regions) and an interrupt-line registry.  Device models raise
    interrupts through :meth:`raise_irq`; the guest-OS simulator registers a
    handler per line (in NDIS terms, the OS dispatches the interrupt to the
    miniport ISR, which is also how RevNIC injects *symbolic* interrupts).
    """

    def __init__(self, exec_backend=None, exec_superblocks=None):
        self.memory = Memory()
        self.bus = Bus(self.memory)
        self.cpu = Cpu(self.bus, exec_backend=exec_backend,
                       exec_superblocks=exec_superblocks)
        self._irq_handlers = {}
        self._pending_irqs = []
        self.irq_count = 0
        self.memory.map_region(HEAP_BASE, HEAP_LIMIT - HEAP_BASE, "heap")
        self.memory.map_region(STACK_LIMIT, STACK_TOP - STACK_LIMIT + 0x1000,
                               "stack")

    # ------------------------------------------------------------------
    # Interrupts

    def register_irq_handler(self, line, handler):
        """Register ``handler()`` to service interrupt ``line``."""
        self._irq_handlers[line] = handler

    def raise_irq(self, line):
        """Assert interrupt ``line``.

        If a handler is registered it runs immediately when the CPU is not
        inside guest code (devices only raise interrupts from Python-side
        device models, so this is always at an instruction boundary);
        otherwise the interrupt is latched for :meth:`drain_irqs`.
        """
        self.irq_count += 1
        handler = self._irq_handlers.get(line)
        if handler is not None:
            handler()
        else:
            self._pending_irqs.append(line)

    def drain_irqs(self):
        """Return and clear latched interrupts raised before registration."""
        pending, self._pending_irqs = self._pending_irqs, []
        return pending
