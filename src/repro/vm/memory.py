"""Sparse, region-checked guest physical memory."""

from repro.errors import MemoryFault
from repro.layout import PAGE_SIZE

_WIDTH_MASK = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}


class Memory:
    """Byte-addressable guest memory backed by sparse 4 KiB pages.

    Regions must be mapped before use; access outside any mapped region
    raises :class:`~repro.errors.MemoryFault`, which is how wild driver
    accesses surface during both concrete and symbolic runs.
    """

    def __init__(self):
        self._pages = {}
        self._regions = []  # (base, limit, name), sorted
        #: Bumped whenever a write (CPU store, DMA, loader) intersects
        #: the watched code span below.  Consumers that cache derived
        #: views of guest code -- the superblock tier's per-chain byte
        #: revalidation -- compare epochs to skip re-reading code that
        #: cannot have changed.  Data writes never bump it.
        self.write_epoch = 0
        self._watch_lo = 1   # empty span (lo > hi): nothing watched yet
        self._watch_hi = 0

    # ------------------------------------------------------------------
    # Region management

    def map_region(self, base, size, name="ram"):
        """Map ``size`` bytes at ``base``; overlapping maps are rejected."""
        if size <= 0:
            raise ValueError("region size must be positive")
        limit = base + size
        for rbase, rlimit, rname in self._regions:
            if base < rlimit and rbase < limit:
                raise ValueError("region %r overlaps %r" % (name, rname))
        self._regions.append((base, limit, name))
        self._regions.sort()

    def region_name(self, address):
        """Name of the region containing ``address`` or ``None``."""
        for base, limit, name in self._regions:
            if base <= address < limit:
                return name
        return None

    def is_mapped(self, address, size=1):
        """True when ``[address, address+size)`` lies in one region."""
        for base, limit, _name in self._regions:
            if base <= address and address + size <= limit:
                return True
        return False

    def _check(self, address, size, kind):
        if not self.is_mapped(address, size):
            raise MemoryFault(address, kind)

    # ------------------------------------------------------------------
    # Typed access

    def read(self, address, width):
        """Read an unsigned little-endian integer of ``width`` bytes."""
        self._check(address, width, "read")
        return int.from_bytes(self._read_raw(address, width), "little")

    def write(self, address, width, value):
        """Write an unsigned little-endian integer of ``width`` bytes."""
        self._check(address, width, "write")
        value &= _WIDTH_MASK[width]
        self._write_raw(address, value.to_bytes(width, "little"))

    def read_bytes(self, address, size):
        """Read ``size`` raw bytes."""
        if size == 0:
            return b""
        self._check(address, size, "read")
        return self._read_raw(address, size)

    def write_bytes(self, address, data):
        """Write raw bytes."""
        if not data:
            return
        self._check(address, len(data), "write")
        self._write_raw(address, data)

    # ------------------------------------------------------------------
    # Raw page-level plumbing

    def _page(self, page_number):
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def _read_raw(self, address, size):
        out = bytearray()
        while size:
            page_number, offset = divmod(address, PAGE_SIZE)
            chunk = min(size, PAGE_SIZE - offset)
            page = self._pages.get(page_number)
            if page is None:
                out += b"\0" * chunk
            else:
                out += page[offset:offset + chunk]
            address += chunk
            size -= chunk
        return bytes(out)

    def watch_code_span(self, lo, hi):
        """Grow the watched code span to include ``[lo, hi)``.  One flat
        span (not a list) keeps the per-write check to two compares; the
        over-approximation only costs spurious epoch bumps."""
        if self._watch_lo > self._watch_hi:
            self._watch_lo, self._watch_hi = lo, hi
        else:
            self._watch_lo = min(self._watch_lo, lo)
            self._watch_hi = max(self._watch_hi, hi)

    def _write_raw(self, address, data):
        if address < self._watch_hi and address + len(data) > self._watch_lo:
            self.write_epoch += 1
        pos = 0
        while pos < len(data):
            page_number, offset = divmod(address + pos, PAGE_SIZE)
            chunk = min(len(data) - pos, PAGE_SIZE - offset)
            self._page(page_number)[offset:offset + chunk] = \
                data[pos:pos + chunk]
            pos += chunk

    def snapshot_pages(self):
        """Return ``{page_number: bytes}`` for all dirty pages (used to seed
        symbolic-execution states with the concrete memory image)."""
        return {n: bytes(p) for n, p in self._pages.items()}
