"""The concrete virtual machine substrate (the reproduction's QEMU analog).

The machine executes R32 code concretely: the guest-OS simulator loads a
driver binary into guest memory and invokes its entry points on this CPU.
RevNIC swaps the concrete CPU's execution of *driver* code for symbolic
execution of the DBT-translated IR (selective symbolic execution), while
everything else -- the OS simulator, the exerciser -- keeps running
concretely, exactly as in the paper's QEMU+KLEE design.
"""

from repro.vm.memory import Memory
from repro.vm.bus import Bus, PortRange, MmioRange
from repro.vm.cpu import Cpu, CpuExit, ExitReason
from repro.vm.machine import Machine

__all__ = [
    "Memory",
    "Bus",
    "PortRange",
    "MmioRange",
    "Cpu",
    "CpuExit",
    "ExitReason",
    "Machine",
]
