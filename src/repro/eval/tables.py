"""Tables 1-4 of the paper, plus the cross-OS validation matrix table.

The validation matrix is this reproduction's own table (the paper reports
functional equivalence anecdotally, per OS); see docs/validation.md.
"""

import inspect
from dataclasses import dataclass

from repro.asm.disasm import static_call_targets
from repro.drivers import DRIVERS, build_driver
from repro.guestos.structures import NdisStatus, PacketFilter
from repro.net import EthernetFrame, EtherType


# ==========================================================================
# Table 1: characteristics of the driver binaries

@dataclass
class Table1Row:
    driver: str
    windows_file: str
    ported_to: str
    driver_size: int
    code_segment_size: int
    imported_functions: int
    implemented_functions: int


_PORTS = {
    "pcnet": "Windows, Linux, KitOS",
    "rtl8139": "Windows, Linux, KitOS",
    "smc91c111": "uC/OS-II, KitOS",
    "rtl8029": "Windows, Linux, KitOS",
}


def table1_compute():
    """Static analysis of the four binaries (Table 1's columns)."""
    rows = []
    for name in ("pcnet", "rtl8139", "smc91c111", "rtl8029"):
        image = build_driver(name)
        rows.append(Table1Row(
            driver=name,
            windows_file=DRIVERS[name].windows_file,
            ported_to=_PORTS[name],
            driver_size=image.file_size,
            code_segment_size=image.code_size,
            imported_functions=len(image.imports),
            implemented_functions=len(static_call_targets(image)),
        ))
    return rows


def table1_render(rows=None):
    rows = rows or table1_compute()
    lines = ["Table 1: characteristics of the driver binaries",
             "%-10s %-14s %-24s %8s %8s %8s %8s"
             % ("driver", "windows file", "ported to", "size", "code",
                "imports", "funcs")]
    for row in rows:
        lines.append("%-10s %-14s %-24s %7dB %7dB %8d %8d"
                     % (row.driver, row.windows_file, row.ported_to,
                        row.driver_size, row.code_segment_size,
                        row.imported_functions, row.implemented_functions))
    return "\n".join(lines)


# ==========================================================================
# Table 2: functionality coverage of the synthesized drivers

#: Feature availability per chip, exactly as Table 2 reports it.
#: 'check' = testable and must pass; 'NT' = code present but not testable
#: on the (virtual) hardware; 'NA' = chip lacks the feature.
TABLE2_FEATURES = {
    "init_shutdown": {"pcnet": "check", "rtl8139": "check",
                      "smc91c111": "check", "rtl8029": "check"},
    "send_receive": {"pcnet": "check", "rtl8139": "check",
                     "smc91c111": "check", "rtl8029": "check"},
    "multicast": {"pcnet": "check", "rtl8139": "check",
                  "smc91c111": "check", "rtl8029": "check"},
    "get_set_mac": {"pcnet": "check", "rtl8139": "check",
                    "smc91c111": "check", "rtl8029": "check"},
    "promiscuous": {"pcnet": "check", "rtl8139": "check",
                    "smc91c111": "check", "rtl8029": "check"},
    "full_duplex": {"pcnet": "check", "rtl8139": "check",
                    "smc91c111": "check", "rtl8029": "check"},
    "dma": {"pcnet": "check", "rtl8139": "check",
            "smc91c111": "NA", "rtl8029": "NA"},
    "wake_on_lan": {"pcnet": "check", "rtl8139": "check",
                    "smc91c111": "NA", "rtl8029": "NA"},
    "led_status": {"pcnet": "NT", "rtl8139": "check",
                   "smc91c111": "check", "rtl8029": "NT"},
}

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"


def _frame(dst, payload=b"x" * 64):
    return EthernetFrame(dst=dst, src=PEER, ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


def _feature_checks(template, device):
    """Run each Table 2 feature on an instantiated synthesized driver;
    returns {feature: bool}."""
    results = {}
    results["init_shutdown"] = device.rx_enabled
    frame = _frame(b"\xff" * 6)
    sent = template.send(frame) == NdisStatus.SUCCESS \
        and template.os.medium.transmitted[-1] == frame
    rx = _frame(MAC, b"y" * 77)
    received = template.inject_rx(rx) == [rx]
    results["send_receive"] = sent and received

    group = b"\x01\x00\x5e\x00\x00\x01"
    template.set_multicast_list([group])
    template.set_packet_filter(PacketFilter.DIRECTED
                               | PacketFilter.MULTICAST)
    results["multicast"] = template.inject_rx(_frame(group)) == \
        [_frame(group)]

    new_mac = b"\x52\x54\x00\x01\x02\x03"
    template.set_mac(new_mac)
    results["get_set_mac"] = template.query_mac() == new_mac \
        and bytes(device.mac) == new_mac

    template.set_packet_filter(PacketFilter.DIRECTED
                               | PacketFilter.PROMISCUOUS)
    results["promiscuous"] = device.promiscuous and \
        template.inject_rx(_frame(b"\x02\x99" * 3)) == [_frame(b"\x02\x99" * 3)]

    template.set_full_duplex(True)
    results["full_duplex"] = device.full_duplex

    results["dma"] = device.stats["tx_frames"] > 0 and \
        getattr(device, "bus", None) is not None

    status = template.enable_wake_on_lan()
    results["wake_on_lan"] = status == NdisStatus.SUCCESS \
        and device.wol_enabled

    status = template.set_led(1)
    results["led_status"] = status == NdisStatus.SUCCESS \
        and device.led_state != 0

    template.shutdown()
    results["init_shutdown"] = results["init_shutdown"] \
        and not device.rx_enabled
    return results


def table2_compute(cache=None):
    """Verify every Table 2 feature of every synthesized driver.

    Returns {feature: {driver: 'check'|'NT'|'NA'|'FAIL'}}.
    """
    from repro.drivers import device_class
    from repro.eval.runner import get_cache
    from repro.targetos import WinSim
    from repro.templates import NicTemplate

    cache = cache or get_cache()
    matrix = {feature: {} for feature in TABLE2_FEATURES}
    for name in sorted(DRIVERS):
        run = cache.run(name)
        target = WinSim(device_class(name), mac=MAC)
        template = NicTemplate(run.synthesized, target,
                               original_image=run.image)
        template.initialize()
        checks = _feature_checks(template, target.device)
        for feature, availability in TABLE2_FEATURES.items():
            expected = availability[name]
            if expected == "check":
                matrix[feature][name] = "check" if checks[feature] \
                    else "FAIL"
            else:
                matrix[feature][name] = expected
    return matrix


def table2_render(matrix=None):
    matrix = matrix or table2_compute()
    marks = {"check": "X", "NT": "N/T", "NA": "N/A", "FAIL": "FAIL"}
    drivers = ("pcnet", "rtl8139", "smc91c111", "rtl8029")
    lines = ["Table 2: functionality coverage of synthesized drivers",
             "%-16s %8s %8s %10s %8s" % ("functionality", *drivers)]
    for feature, row in matrix.items():
        lines.append("%-16s %8s %8s %10s %8s"
                     % (feature, *(marks[row[d]] for d in drivers)))
    return "\n".join(lines)


# ==========================================================================
# Table 3: template-writing effort (person-days paper / LoC+API proxies)

def table3_compute():
    from repro import targetos as targetos_pkg
    from repro.drivers import device_class
    from repro.targetos import TARGET_OSES
    from repro.templates.base import TEMPLATE_INFO

    rows = []
    for name, os_cls in TARGET_OSES.items():
        source = inspect.getsource(inspect.getmodule(os_cls))
        instance = os_cls(device_class("rtl8029"))
        rows.append({
            "target_os": name,
            "person_days_paper": TEMPLATE_INFO[name].person_days_paper,
            "boilerplate_loc": len(source.splitlines()),
            "api_surface": len(instance.adaptation_table()),
        })
    return rows


def table3_render(rows=None):
    rows = rows or table3_compute()
    lines = ["Table 3: time to write a template (paper person-days; "
             "repo proxies: boilerplate LoC / adapted API surface)",
             "%-10s %12s %16s %12s" % ("target OS", "person-days",
                                       "boilerplate LoC", "API surface")]
    for row in sorted(rows, key=lambda r: -r["person_days_paper"]):
        lines.append("%-10s %12d %16d %12d"
                     % (row["target_os"], row["person_days_paper"],
                        row["boilerplate_loc"], row["api_surface"]))
    return "\n".join(lines)


# ==========================================================================
# Table 4: developer effort (paper numbers + automation proxies)

#: The paper's Table 4 (manual Linux development vs RevNIC).
TABLE4_PAPER = {
    "rtl8139": {"manual_persons": 18, "manual_span": "4 years",
                "revnic_persons": 1, "revnic_span": "1 week"},
    "smc91c111": {"manual_persons": 8, "manual_span": "4 years",
                  "revnic_persons": 1, "revnic_span": "4 days"},
    "rtl8029": {"manual_persons": 5, "manual_span": "2 years",
                "revnic_persons": 1, "revnic_span": "5 days"},
    "pcnet": {"manual_persons": 3, "manual_span": "4 years",
              "revnic_persons": 1, "revnic_span": "1 week"},
}


def table4_compute(cache=None):
    from repro.eval.runner import get_cache

    cache = cache or get_cache()
    rows = []
    for name in ("rtl8139", "smc91c111", "rtl8029", "pcnet"):
        run = cache.run(name)
        report = run.synthesized.report
        paper = TABLE4_PAPER[name]
        rows.append({
            "driver": name,
            **paper,
            "functions_recovered": report.function_count,
            "functions_automatic": report.fully_synthesized_count,
            "manual_integration": report.manual_count,
            "wall_seconds": run.stats["wall_seconds"],
        })
    return rows


# ==========================================================================
# Validation matrix: drivers x target OSes under the workload catalog

def validation_matrix_compute(cache=None, parallel=None):
    """Run the full differential validation matrix (see repro.validate)."""
    from repro.eval.runner import get_cache
    from repro.validate import ValidationMatrix

    return ValidationMatrix(orchestrator=cache or get_cache()) \
        .run(parallel=parallel)


def _cell_text(cell):
    status = cell.status
    if status == "skipped":
        return "-"
    if status == "unsupported":
        return "unsup"
    matched, ran = len(cell.matched), len(cell.ran)
    mark = "" if status == "equivalent" else "!"
    return "%d%s/%d" % (matched, mark, ran)


def validation_matrix_render(result=None):
    """Render the matrix: one row per driver, one column per target OS.

    A cell reads ``matched/run`` scenarios (``!`` flags divergences),
    ``unsup`` marks templates that cannot host the driver (verified
    against the per-cell expectation), ``-`` an all-skipped cell.
    """
    result = result or validation_matrix_compute()
    lines = ["Validation matrix: original binary vs synthesized driver "
             "(matched/run scenarios)",
             "%-10s" % "driver"
             + "".join("%10s" % os_name for os_name in result.os_names)
             + "   unexplained"]
    for driver in result.drivers:
        row = "%-10s" % driver
        unexplained = 0
        for os_name in result.os_names:
            cell = result.cell(driver, os_name)
            row += "%10s" % _cell_text(cell)
            unexplained += len(cell.unexplained())
        lines.append(row + "%14d" % unexplained)
    summary = result.summary()
    unsupported = [cell for cell in result.cells.values()
                   if cell.status == "unsupported"]
    unsupported_note = ""
    if unsupported:
        unsupported_note = " (all expected)" \
            if all(cell.expected == "unsupported" for cell in unsupported) \
            else " (UNEXPECTED)"
    lines.append("cells: %d equivalent, %d unsupported%s, "
                 "%d divergent; %d/%d scenarios matched [%s %.1fs]"
                 % (summary["equivalent"], summary["unsupported"],
                    unsupported_note, summary["divergent"],
                    summary["scenarios_matched"],
                    summary["scenarios_run"], summary["mode"],
                    summary["wall_seconds"]))
    for driver, os_name, scenario in result.unexplained():
        first = scenario.divergences[0].detail if scenario.divergences \
            else scenario.candidate_error
        lines.append("  UNEXPLAINED %s/%s %s: %s"
                     % (driver, os_name, scenario.name, first))
    return "\n".join(lines)


def table4_render(rows=None):
    rows = rows or table4_compute()
    lines = ["Table 4: developer effort (paper) + automation proxies "
             "(measured)",
             "%-10s %14s %14s %8s %8s %8s %9s"
             % ("device", "manual (Linux)", "RevNIC (paper)", "funcs",
                "auto", "manual", "rev-eng s")]
    for row in rows:
        lines.append("%-10s %3d p/%-9s  1 p/%-9s %8d %8d %8d %8.1fs"
                     % (row["driver"], row["manual_persons"],
                        row["manual_span"], row["revnic_span"],
                        row["functions_recovered"],
                        row["functions_automatic"],
                        row["manual_integration"], row["wall_seconds"]))
    return "\n".join(lines)
