"""Evaluation harness reproducing every table and figure of the paper.

Each ``table*``/``fig*`` module exposes a ``compute()`` returning structured
data and a ``render()`` printing the same rows/series the paper reports.
:mod:`repro.eval.runner` caches the expensive pipeline stages (RevNIC runs,
synthesis) so all experiments in one process share them.
"""

from repro.eval.runner import PipelineCache, get_cache

__all__ = ["PipelineCache", "get_cache"]
