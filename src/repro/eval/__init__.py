"""Evaluation harness reproducing every table and figure of the paper.

Each ``table*``/``fig*`` module exposes a ``compute()`` returning structured
data and a ``render()`` printing the same rows/series the paper reports.
The expensive pipeline stages (RevNIC runs, synthesis) are shared through
:mod:`repro.pipeline`: every experiment consumes serializable
:class:`~repro.pipeline.artifact.RunArtifact` objects from the process-wide
orchestrator, which fans cold runs out across worker processes and caches
artifacts on disk between sessions.
"""

from repro.eval.runner import PipelineOrchestrator, get_cache

__all__ = ["PipelineOrchestrator", "get_cache"]
