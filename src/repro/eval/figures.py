"""Figures 2-9 of the paper.

Each ``figN_compute()`` returns ``{series_name: [PacketPoint...]}`` (or the
figure's native structure) and ``figN_render()`` prints the series as
text tables, mirroring the paper's plots.
"""

from repro.drivers import device_class
from repro.eval import perfmodel as P
from repro.eval.runner import get_cache
from repro.net.traffic import packet_size_sweep
from repro.targetos import TARGET_OSES

#: Packet-size x axis shared by figures 2-7 (a small default keeps the
#: benches quick; pass sizes=... for denser curves).
DEFAULT_SIZES = (64, 256, 512, 1000, 1400, 1472)


def _series(cost_by_size, os_name, platform, code_kb=None):
    traits = TARGET_OSES[os_name].TRAITS
    return [P.model_point(size, cost, traits, platform, code_kb=code_kb)
            for size, cost in sorted(cost_by_size.items())]


def _standard_five_series(driver, platform, sizes, cache=None):
    """The five series of Figures 2/6/7: Windows original, Win->Win,
    Win->Linux, Linux native, Win->KitOS."""
    cache = cache or get_cache()
    run = cache.run(driver)
    original = P.measure_original(driver, sizes)
    synth_win = P.measure_synthesized(run, "winsim", sizes)
    synth_lin = P.measure_synthesized(run, "linsim", sizes)
    synth_kit = P.measure_synthesized(run, "kitos", sizes)
    native_lin = {s: P.native_cost(c) for s, c in original.items()}
    return {
        "Windows Original": _series(original, "winsim", platform),
        "Windows->Windows": _series(synth_win, "winsim", platform),
        "Windows->Linux": _series(synth_lin, "linsim", platform),
        "Linux Original": _series(native_lin, "linsim", platform),
        "Windows->KitOS": _series(synth_kit, "kitos", platform),
    }


# --------------------------------------------------------------------------
# Figure 2 + 3: RTL8139 on the x86 PC

def fig2_compute(sizes=DEFAULT_SIZES, cache=None):
    """RTL8139 throughput on x86 (Mbps per packet size)."""
    return _standard_five_series("rtl8139", P.PLATFORMS["pc"], sizes, cache)


def fig3_compute(sizes=DEFAULT_SIZES, cache=None):
    """RTL8139 CPU utilization on x86 (same runs as Figure 2)."""
    return fig2_compute(sizes, cache)


# --------------------------------------------------------------------------
# Figure 4 + 5: SMSC 91C111 on the FPGA

def fig4_compute(sizes=DEFAULT_SIZES, cache=None):
    """91C111 throughput ported from Windows to the FPGA (uC/OS-II)."""
    cache = cache or get_cache()
    run = cache.run("smc91c111")
    platform = P.PLATFORMS["fpga"]
    original = P.measure_original("smc91c111", sizes)
    synth_uc = P.measure_synthesized(run, "ucsim", sizes)
    code_kb = P.synthesized_code_kb(run)
    native_kb = run.image.code_size / 1024.0
    native_uc = {s: P.native_cost(c) for s, c in original.items()}
    return {
        "uC/OSII Original": _series(native_uc, "ucsim", platform,
                                    code_kb=native_kb),
        "Windows->uC/OSII": _series(synth_uc, "ucsim", platform,
                                    code_kb=code_kb),
    }


def fig5_compute(sizes=DEFAULT_SIZES, cache=None):
    """CPU fraction spent inside the 91C111 driver (Figure 5).

    The paper plots the share of CPU time spent in the driver itself
    (roughly 20-30% for both drivers); overall CPU usage on the FPGA is
    100% since there is no DMA.  We reuse Figure 4's modeled points, which
    carry the driver-cycles share of total packet time.
    """
    series = fig4_compute(sizes, cache)
    return {name: [(p.size, p.driver_fraction) for p in points]
            for name, points in series.items()}


# --------------------------------------------------------------------------
# Figure 6: RTL8029 on QEMU; Figure 7: PCNet on VMware

def fig6_compute(sizes=DEFAULT_SIZES, cache=None):
    """RTL8029 throughput on the QEMU testbed (virtual NIC, no DMA)."""
    return _standard_five_series("rtl8029", P.PLATFORMS["qemu"], sizes,
                                 cache)


def fig7_compute(sizes=DEFAULT_SIZES, cache=None):
    """AMD PCNet throughput on the VMware testbed (virtual NIC, DMA)."""
    return _standard_five_series("pcnet", P.PLATFORMS["vmware"], sizes,
                                 cache)


# --------------------------------------------------------------------------
# Figure 8: basic-block coverage over running time

def fig8_compute(cache=None):
    """Coverage timelines per driver: [(blocks, seconds, fraction)]."""
    cache = cache or get_cache()
    out = {}
    for name in ("rtl8029", "smc91c111", "rtl8139", "pcnet"):
        run = cache.run(name)
        out[name] = list(run.coverage.timeline)
    return out


# --------------------------------------------------------------------------
# Figure 9: automatically recovered vs manual functions

def fig9_compute(cache=None):
    """Per driver: (automated count, manual count, automated fraction)."""
    cache = cache or get_cache()
    out = {}
    for name in ("rtl8029", "smc91c111", "rtl8139", "pcnet"):
        report = cache.run(name).synthesized.report
        out[name] = {
            "automated": report.fully_synthesized_count,
            "manual": report.manual_count,
            "fraction": report.automated_fraction,
        }
    return out


# --------------------------------------------------------------------------
# Text renderers

def render_throughput(series, title):
    lines = [title]
    names = list(series)
    sizes = [point.size for point in series[names[0]]]
    lines.append("%-6s" % "size" + "".join("%20s" % n for n in names))
    for i, size in enumerate(sizes):
        row = "%-6d" % size
        for name in names:
            row += "%17.1f Mb" % series[name][i].throughput_mbps
        lines.append(row)
    return "\n".join(lines)


def render_utilization(series, title):
    lines = [title]
    names = list(series)
    sizes = [point.size for point in series[names[0]]]
    lines.append("%-6s" % "size" + "".join("%20s" % n for n in names))
    for i, size in enumerate(sizes):
        row = "%-6d" % size
        for name in names:
            row += "%18.0f %%" % (100 * series[name][i].cpu_utilization)
        lines.append(row)
    return "\n".join(lines)


def render_fraction_series(series, title):
    lines = [title]
    names = list(series)
    sizes = [size for size, _f in series[names[0]]]
    lines.append("%-6s" % "size" + "".join("%20s" % n for n in names))
    for i, size in enumerate(sizes):
        row = "%-6d" % size
        for name in names:
            row += "%18.0f %%" % (100 * series[name][i][1])
        lines.append(row)
    return "\n".join(lines)


def render_fig8(timelines):
    lines = ["Figure 8: basic-block coverage vs running time"]
    for name, samples in timelines.items():
        if not samples:
            continue
        final = samples[-1]
        lines.append("  %-10s %3d samples, final %.1f%% in %.1fs "
                     "(%d blocks executed)"
                     % (name, len(samples), 100 * final[2], final[1],
                        final[0]))
    return "\n".join(lines)


def render_fig9(breakdown):
    lines = ["Figure 9: automatically recovered vs manual functions"]
    for name, row in breakdown.items():
        lines.append("  %-10s automated %2d / manual %2d  (%.0f%% automatic)"
                     % (name, row["automated"], row["manual"],
                        100 * row["fraction"]))
    return "\n".join(lines)
