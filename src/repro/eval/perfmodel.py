"""Performance model behind Figures 2-7.

Driver costs are **measured** -- the original binary's retired instruction
and device-access counts on the concrete CPU, the synthesized driver's
identical counters from the IR interpreter -- and combined with per-platform
and per-OS profiles into throughput and CPU-utilization curves.

Platform profiles substitute for the paper's physical testbeds (PC, FPGA4U
board, QEMU and VMware hosts); see DESIGN.md's substitution table.  The
key *shape* properties are structural, not tuned: PIO drivers saturate the
CPU (RTL8029/91C111), virtual NICs have no rated-speed cap (so VM curves
keep climbing), KitOS pays no network-stack cost, and the synthesized
driver's instruction count is within a few percent of the original's
because it executes the same recovered code.
"""

from dataclasses import dataclass

from repro.drivers import DRIVERS, build_driver, device_class
from repro.guestos.harness import DriverHarness
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import NicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"


@dataclass(frozen=True)
class PlatformProfile:
    """A hardware testbed profile."""

    name: str
    cpu_mhz: float
    cycles_per_instr: float
    io_access_cycles: float       # cost of one device register access
    link_mbps: float              # rated NIC speed; None = virtual (uncapped)
    bus_limit_mbps: float = None  # shared-bus ceiling (the FPGA's SDRAM bus)
    #: I-cache pressure factor per byte of extra code footprint (FPGA only;
    #: models the paper's 87KB-vs-59KB synthesized-binary observation)
    icache_penalty_per_kb: float = 0.0


#: The paper's four testbeds (section 5.1).
PLATFORMS = {
    "pc": PlatformProfile("pc", cpu_mhz=2400.0, cycles_per_instr=1.2,
                          io_access_cycles=1200.0, link_mbps=100.0),
    "fpga": PlatformProfile("fpga", cpu_mhz=75.0, cycles_per_instr=1.6,
                            io_access_cycles=6.0, link_mbps=100.0,
                            bus_limit_mbps=45.0,
                            icache_penalty_per_kb=0.004),
    "qemu": PlatformProfile("qemu", cpu_mhz=2000.0, cycles_per_instr=1.4,
                            io_access_cycles=400.0, link_mbps=None),
    "vmware": PlatformProfile("vmware", cpu_mhz=2000.0,
                              cycles_per_instr=1.3,
                              io_access_cycles=500.0, link_mbps=None),
}


@dataclass
class DriverCost:
    """Measured per-packet driver cost at one packet size."""

    instructions: float
    io_accesses: float
    uses_dma: bool


def _frame_for(size, workload):
    return workload.next_frame().to_bytes()


def measure_original(driver_name, sizes, packets=6):
    """Measure the original binary driver's per-packet send cost on the
    source OS, per UDP payload size.  Returns {size: DriverCost}."""
    info = DRIVERS[driver_name]
    out = {}
    for size in sizes:
        harness = DriverHarness(build_driver(driver_name),
                                device_class(driver_name), mac=MAC)
        harness.boot()
        workload = UdpWorkload(MAC, PEER, size)
        cpu = harness.machine.cpu
        start_instr, start_io = cpu.instret, cpu.io_ops
        for _ in range(packets):
            harness.send(_frame_for(size, workload))
        out[size] = DriverCost(
            instructions=(cpu.instret - start_instr) / packets,
            io_accesses=(cpu.io_ops - start_io) / packets,
            uses_dma=info.uses_dma)
    return out


def measure_synthesized(run, target_os_name, sizes, packets=6):
    """Measure the synthesized driver's per-packet send cost on a target
    OS.  ``run`` is a :class:`~repro.pipeline.artifact.RunArtifact`."""
    info = DRIVERS[run.name]
    out = {}
    for size in sizes:
        target = TARGET_OSES[target_os_name](device_class(run.name), mac=MAC)
        template = NicTemplate(run.synthesized, target,
                               original_image=run.image)
        template.initialize()
        workload = UdpWorkload(MAC, PEER, size)
        env = template.runtime.env
        start_instr, start_io = env.instrs_retired, env.io_ops
        for _ in range(packets):
            template.send(_frame_for(size, workload))
        out[size] = DriverCost(
            instructions=(env.instrs_retired - start_instr) / packets,
            io_accesses=(env.io_ops - start_io) / packets,
            uses_dma=info.uses_dma)
    return out


#: Hand-optimization factor applied to derive the native target-OS driver's
#: cost from the measured hardware-protocol cost (the paper's native
#: drivers are hand-tuned but perform the same mandatory device I/O;
#: documented as a substitution in EXPERIMENTS.md).
NATIVE_HAND_TUNING = 0.96


@dataclass
class PacketPoint:
    size: int
    throughput_mbps: float
    cpu_utilization: float
    #: fraction of the packet's CPU time spent inside the driver itself
    #: (Figure 5's metric)
    driver_fraction: float = 0.0


def synthesized_code_kb(run):
    """Approximate synthesized binary size (paper: 87KB vs the native
    59KB on the FPGA): recovered instructions re-encoded at 8 bytes each
    plus template boilerplate."""
    instrs = sum(len(b.instr_addrs)
                 for f in run.synthesized.functions.values()
                 for b in f.blocks.values())
    template_overhead = 24 * 1024
    return (instrs * 8 + template_overhead) / 1024.0


def model_point(size, cost, os_traits, platform, code_kb=None,
                irqs_per_packet=1.0):
    """Combine a measured driver cost with OS + platform profiles.

    The benchmark send path is synchronous (the next packet is handed down
    after the previous completion interrupt), so per-packet time is the
    *sum* of CPU work and wire serialization; CPU utilization is the CPU
    share of that time.  Virtual NICs have no wire time ("the virtual NIC
    can confirm transmission immediately"), so VM runs are CPU-bound at
    ~100% utilization, exactly as in section 5.3.
    """
    wire_bytes = size + 8 + 20 + 14 + 4 + 20  # UDP+IP+Ethernet+FCS+framing
    cpi = platform.cycles_per_instr
    if code_kb is not None and platform.icache_penalty_per_kb:
        cpi *= 1.0 + platform.icache_penalty_per_kb * code_kb
    driver_cycles = cost.instructions * cpi \
        + cost.io_accesses * platform.io_access_cycles
    os_instr = os_traits.stack_cost + os_traits.stack_per_byte * size \
        + irqs_per_packet * os_traits.irq_cost
    cycles = driver_cycles + os_instr * cpi
    cpu_seconds = cycles / (platform.cpu_mhz * 1e6)

    if platform.link_mbps is not None:
        wire_seconds = wire_bytes * 8 / (platform.link_mbps * 1e6)
    else:
        wire_seconds = 0.0
    if platform.bus_limit_mbps is not None:
        wire_seconds = max(wire_seconds,
                           wire_bytes * 8 / (platform.bus_limit_mbps * 1e6))

    packet_seconds = cpu_seconds + wire_seconds
    throughput = size * 8 / packet_seconds / 1e6
    utilization = cpu_seconds / packet_seconds
    total_cycles = packet_seconds * platform.cpu_mhz * 1e6
    return PacketPoint(size=size, throughput_mbps=throughput,
                       cpu_utilization=utilization,
                       driver_fraction=driver_cycles / total_cycles)


def native_cost(cost):
    """Derive the native target-OS driver's cost from the measured
    hardware-protocol cost."""
    return DriverCost(instructions=cost.instructions * NATIVE_HAND_TUNING,
                      io_accesses=cost.io_accesses,
                      uses_dma=cost.uses_dma)
