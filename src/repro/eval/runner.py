"""Shared pipeline runs for the evaluation.

Thin compatibility front over :mod:`repro.pipeline`: the old in-process
singleton ``PipelineCache`` is replaced by the artifact-based
:class:`~repro.pipeline.orchestrator.PipelineOrchestrator` -- runs fan
out across worker processes, results are serializable
:class:`~repro.pipeline.artifact.RunArtifact` objects, and a
content-addressed on-disk store makes repeated sessions skip
re-exploration entirely.  ``get_cache().run(name)`` keeps its signature;
it now returns an artifact instead of a bundle of live engine objects.
"""

from repro.pipeline.orchestrator import (PipelineOrchestrator,
                                         get_orchestrator)

MAC = b"\x52\x54\x00\xAA\xBB\xCC"


def get_cache():
    """The process-wide pipeline orchestrator."""
    return get_orchestrator()


__all__ = ["MAC", "PipelineOrchestrator", "get_cache"]
