"""Shared pipeline runs for the evaluation.

Thin front over :mod:`repro.pipeline`: ``get_cache()`` hands every
experiment the process-wide
:class:`~repro.pipeline.orchestrator.PipelineOrchestrator`, whose
``run(name)`` returns the serializable
:class:`~repro.pipeline.artifact.RunArtifact` for one driver -- loaded
from memory, from the content-addressed on-disk store, or computed (cold
runs fan out across worker processes).  Consumers never see a live
RevNIC engine; tables, figures, the perf model, the validation matrix
and the functional tests all read artifacts.
"""

from repro.pipeline.orchestrator import (PipelineOrchestrator,
                                         get_orchestrator)

MAC = b"\x52\x54\x00\xAA\xBB\xCC"


def get_cache():
    """The process-wide pipeline orchestrator."""
    return get_orchestrator()


__all__ = ["MAC", "PipelineOrchestrator", "get_cache"]
