"""Shared, cached pipeline runs for the evaluation."""

from dataclasses import dataclass

from repro.drivers import DRIVERS, build_driver, device_class
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize

MAC = b"\x52\x54\x00\xAA\xBB\xCC"


@dataclass
class PipelineRun:
    """One driver's reverse-engineering run and synthesis output."""

    name: str
    image: object
    engine: object
    result: object
    synthesized: object

    @property
    def coverage(self):
        return self.result.coverage_fraction


class PipelineCache:
    """Runs RevNIC + synthesis at most once per driver per process."""

    def __init__(self):
        self._runs = {}

    def run(self, name, strategy="coverage"):
        key = (name, strategy)
        cached = self._runs.get(key)
        if cached is None:
            image = build_driver(name)
            pci = device_class(name).PCI
            config = RevNicConfig(driver_name=name, pci=pci,
                                  strategy=strategy)
            engine = RevNic(image, config)
            result = engine.run()
            synthesized = synthesize(
                result, import_names=engine.loaded.import_names,
                translator=engine.translator)
            cached = PipelineRun(name=name, image=image, engine=engine,
                                 result=result, synthesized=synthesized)
            self._runs[key] = cached
        return cached

    def all_drivers(self):
        return [self.run(name) for name in sorted(DRIVERS)]


_GLOBAL_CACHE = PipelineCache()


def get_cache():
    """The process-wide pipeline cache."""
    return _GLOBAL_CACHE
