"""The driver corpus.

``asm/*.s`` are the sources of the four "proprietary Windows" drivers.
They are assembled to opaque DRV binaries by :func:`build_driver`; every
consumer downstream of this module (the guest OS, RevNIC, the evaluation)
sees only the binaries, mirroring the paper's setting where "at no time in
this process did we have access to the drivers' source code" (section 5).

There is no separate corpus of hand-written native target-OS drivers: the
"Linux Original" / "uC/OSII Original" baselines of Figures 2-7 are derived
by :func:`repro.eval.perfmodel.native_cost`, which applies a hand-tuning
factor to the measured hardware-protocol cost of the original binary (the
mandatory device I/O is identical for any correct driver of the same NIC).
"""

import os
from dataclasses import dataclass

from repro.asm import assemble_file

_ASM_DIR = os.path.join(os.path.dirname(__file__), "asm")


@dataclass(frozen=True)
class DriverInfo:
    """Metadata for one reverse-engineering target."""

    name: str            # short name used throughout the evaluation
    windows_file: str    # the paper's original Windows driver file name
    device: str          # key into repro.hw.NIC_MODELS
    uses_dma: bool
    link_mbps: int       # rated link speed of the physical chip


DRIVERS = {
    "pcnet": DriverInfo("pcnet", "pcntpci5.sys", "pcnet",
                        uses_dma=True, link_mbps=100),
    "rtl8139": DriverInfo("rtl8139", "rtl8139.sys", "rtl8139",
                          uses_dma=True, link_mbps=100),
    "smc91c111": DriverInfo("smc91c111", "lan9000.sys", "smc91c111",
                            uses_dma=False, link_mbps=10),
    "rtl8029": DriverInfo("rtl8029", "rtl8029.sys", "rtl8029",
                          uses_dma=False, link_mbps=10),
}

_image_cache = {}


def driver_source_path(name):
    """Path of the assembly source for driver ``name``."""
    if name not in DRIVERS:
        raise KeyError("unknown driver %r" % name)
    return os.path.join(_ASM_DIR, "%s.s" % name)


def build_driver(name):
    """Assemble driver ``name`` to a :class:`~repro.asm.DrvImage`.

    Images are cached per process; the binary bytes are the only artifact
    the reverse-engineering pipeline consumes.
    """
    image = _image_cache.get(name)
    if image is None:
        image = assemble_file(driver_source_path(name))
        _image_cache[name] = image
    return image


def device_class(name):
    """The device-model class driver ``name`` programs."""
    from repro.hw import NIC_MODELS

    return NIC_MODELS[DRIVERS[name].device]
