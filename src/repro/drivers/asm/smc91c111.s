; smc91c111.s -- "proprietary Windows" NDIS miniport for the SMSC 91C111.
;
; Programming style: bank-switched registers over MMIO with on-chip packet
; memory managed by an MMU (allocate / release) and TX/RX FIFOs.  No bus
; mastering: the CPU copies every halfword through the DATA window, which
; is what makes Figure 5's in-driver CPU share so large.
;
; Calling convention: stdcall, r0 = return value.  Entry points read all
; stack parameters up front; helpers clobber r0-r3 and preserve r4+.

.import NdisMRegisterMiniport
.import NdisMSetAttributes
.import NdisAllocateMemory
.import NdisMMapIoSpace
.import NdisMRegisterInterrupt
.import NdisStallExecution
.import NdisWriteErrorLogEntry
.import NdisMSendComplete
.import NdisMIndicateReceivePacket

; ---- adapter-context layout
.equ CTX_IO,      0x00         ; MMIO register base
.equ CTX_MAC,     0x04
.equ CTX_FILTER,  0x0C
.equ CTX_DUPLEX,  0x10
.equ CTX_RXBUF,   0x14         ; host staging buffer
.equ CTX_LASTPNR, 0x18         ; packet number of the last transmit
.equ CTX_MCAST,   0x20         ; 8-byte multicast hash shadow

; ---- register file (per-bank offsets; bank select at 0x0E)
.equ R_BANK,    0x0E
.equ R_TCR,     0x00           ; bank 0
.equ R_RCR,     0x04
.equ R_RPCR,    0x0A
.equ R_IAR,     0x04           ; bank 1 (6 bytes)
.equ R_MMU,     0x00           ; bank 2
.equ R_PNR,     0x02
.equ R_ARR,     0x03
.equ R_PTR,     0x06
.equ R_DATA,    0x08
.equ R_INTST,   0x0C
.equ R_INTMSK,  0x0D
.equ R_MCAST,   0x00           ; bank 3 (8 bytes)

.equ TCR_TXENA,   0x0001
.equ TCR_FDUPLX,  0x0800
.equ RCR_PRMS,    0x0002
.equ RCR_RXEN,    0x0100
.equ RCR_SOFTRST, 0x8000
.equ MMU_ALLOC,   0x20
.equ MMU_POPRX,   0x70
.equ MMU_FREEPKT, 0x80
.equ MMU_TXQUEUE, 0xC0
.equ ARR_FAILED,  0x80
.equ PTR_AUTOINC, 0x4000
.equ PTR_RCV,     0x8000
.equ INT_RCV,     0x01
.equ INT_TX,      0x02
.equ INT_ALLOC,   0x08

; ---- NDIS constants
.equ ST_SUCCESS,        0x00000000
.equ ST_FAILURE,        0xC0000001
.equ ST_NOT_SUPPORTED,  0xC00000BB
.equ ST_RESOURCES,      0xC000009A
.equ ST_INVALID_LENGTH, 0xC0010014
.equ OID_FILTER,  0x0001010E
.equ OID_SPEED,   0x00010107
.equ OID_MEDIA,   0x00010114
.equ OID_MAC_SET, 0x01010101
.equ OID_MAC_CUR, 0x01010102
.equ OID_MCAST,   0x01010103
.equ OID_DUPLEX,  0x00010203
.equ OID_WOL,     0xFD010106
.equ OID_LED,     0xFF010001
.equ MAX_FRAME, 1514

; ==========================================================================
.entry DriverEntry
.export DriverEntry

DriverEntry:
    movi r1, miniport
    movi r2, mp_initialize
    st32 [r1+0x00], r2
    movi r2, mp_send
    st32 [r1+0x04], r2
    movi r2, mp_isr
    st32 [r1+0x08], r2
    movi r2, mp_set_info
    st32 [r1+0x0C], r2
    movi r2, mp_query_info
    st32 [r1+0x10], r2
    movi r2, mp_reset
    st32 [r1+0x14], r2
    movi r2, mp_halt
    st32 [r1+0x18], r2
    push r1
    call @NdisMRegisterMiniport
    movi r0, ST_SUCCESS
    ret

; sm_bank(base, n) -- select a register bank
sm_bank:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    st16 [r1+R_BANK], r2
    ret 8

; --------------------------------------------------------------------------
; initialize(ctx)

mp_initialize:
    ld32 r9, [sp+4]
    push r9
    call @NdisMSetAttributes
    movi r1, 0x100
    push r1
    movi r1, 0
    push r1
    call @NdisMMapIoSpace
    st32 [r9+CTX_IO], r0
    mov r8, r0
    movi r1, 1536
    push r1
    call @NdisAllocateMemory
    st32 [r9+CTX_RXBUF], r0
    ; read the station address from the IAR registers (bank 1)
    movi r1, 1
    push r1
    push r8
    call sm_bank
    movi r2, 0
ini_mac:
    add r1, r8, r2
    ld8 r1, [r1+R_IAR]
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, ini_mac
    ; operating defaults
    movi r1, 0x05
    st32 [r9+CTX_FILTER], r1
    movi r1, 0
    st32 [r9+CTX_DUPLEX], r1
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    st32 [r9+CTX_LASTPNR], r1
    push r9
    call sm_hw_setup
    movi r1, 5
    push r1
    call @NdisStallExecution
    movi r1, 6
    push r1
    call @NdisMRegisterInterrupt
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; sm_hw_setup(ctx) -- soft reset and reprogram from the context shadow

sm_hw_setup:
    ld32 r1, [sp+4]
    push r4, r5
    mov r5, r1
    ld32 r4, [r5+CTX_IO]
    ; bank 0: soft reset, then release it
    movi r1, 0
    push r1
    push r4
    call sm_bank
    movi r0, RCR_SOFTRST
    st16 [r4+R_RCR], r0
    movi r0, 0
    st16 [r4+R_RCR], r0
    ; station address + multicast table
    push r5
    call sm_set_mac
    push r5
    call sm_write_mcast
    ; bank 2: unmask receive + transmit interrupts
    movi r1, 2
    push r1
    push r4
    call sm_bank
    movi r0, INT_RCV | INT_TX
    st8 [r4+R_INTMSK], r0
    ; bank 0: enable transmitter and receiver
    movi r1, 0
    push r1
    push r4
    call sm_bank
    ld32 r0, [r5+CTX_DUPLEX]
    shl r0, r0, 11             ; TCR.FDUPLX
    or r0, r0, TCR_TXENA
    st16 [r4+R_TCR], r0
    ld32 r1, [r5+CTX_FILTER]
    movi r0, RCR_RXEN
    and r1, r1, 0x20
    bz r1, shs_rcr
    or r0, r0, RCR_PRMS
shs_rcr:
    st16 [r4+R_RCR], r0
    pop r5, r4
    ret 4

; sm_set_mac(ctx) -- program IAR0-5 (bank 1) from the context copy
sm_set_mac:
    ld32 r1, [sp+4]
    push r4, r5
    mov r5, r1
    ld32 r4, [r5+CTX_IO]
    movi r1, 1
    push r1
    push r4
    call sm_bank
    movi r3, 0
ssm_loop:
    add r1, r5, r3
    ld8 r1, [r1+CTX_MAC]
    add r2, r4, r3
    st8 [r2+R_IAR], r1
    add r3, r3, 1
    blt r3, 6, ssm_loop
    pop r5, r4
    ret 4

; sm_write_mcast(ctx) -- program the bank 3 multicast table
sm_write_mcast:
    ld32 r1, [sp+4]
    push r4, r5
    mov r5, r1
    ld32 r4, [r5+CTX_IO]
    movi r1, 3
    push r1
    push r4
    call sm_bank
    movi r3, 0
swm_loop:
    add r1, r5, r3
    ld8 r1, [r1+CTX_MCAST]
    add r2, r4, r3
    st8 [r2+R_MCAST], r1
    add r3, r3, 1
    blt r3, 8, swm_loop
    pop r5, r4
    ret 4

; --------------------------------------------------------------------------
; send(ctx, packet, length)

mp_send:
    ld32 r9, [sp+4]
    ld32 r4, [sp+8]
    ld32 r5, [sp+12]
    ld32 r8, [r9+CTX_IO]
    bleu r5, MAX_FRAME, snd_ok
    movi r1, 0xBAD0001
    push r1
    call @NdisWriteErrorLogEntry
    movi r0, ST_INVALID_LENGTH
    ret 12
snd_ok:
    movi r1, 2
    push r1
    push r8
    call sm_bank
    ; grab a packet buffer from the on-chip MMU; RX can hold every
    ; buffer of the shared packet memory, so a bounded retry and then
    ; a resource failure back to the OS -- never an unbounded spin
    movi r6, 4
snd_alloc:
    movi r1, MMU_ALLOC
    st16 [r8+R_MMU], r1
    ld8 r1, [r8+R_ARR]
    and r2, r1, ARR_FAILED
    bz r2, snd_got
    sub r6, r6, 1
    bnz r6, snd_alloc
    movi r1, 0xBAD0002
    push r1
    call @NdisWriteErrorLogEntry
    movi r0, ST_RESOURCES
    ret 12
snd_got:
    and r1, r1, 0x3F
    st8 [r8+R_PNR], r1
    st32 [r9+CTX_LASTPNR], r1
    ; window to the start of the packet, auto-increment
    movi r1, PTR_AUTOINC
    st16 [r8+R_PTR], r1
    ; status word, then byte count (frame + 6 bytes of framing)
    movi r1, 0
    st16 [r8+R_DATA], r1
    add r1, r5, 6
    st16 [r8+R_DATA], r1
    ; halfword copy with odd-byte tail
    mov r6, r5
    mov r7, r4
snd_copy:
    bltu r6, 2, snd_tail
    ld16 r1, [r7+0]
    st16 [r8+R_DATA], r1
    add r7, r7, 2
    sub r6, r6, 2
    jmp snd_copy
snd_tail:
    bz r6, snd_ctl
    ld8 r1, [r7+0]
    st8 [r8+R_DATA], r1
snd_ctl:
    movi r1, 0
    st16 [r8+R_DATA], r1       ; control word
    movi r1, MMU_TXQUEUE
    st16 [r8+R_MMU], r1
    movi r1, ST_SUCCESS
    push r1
    call @NdisMSendComplete
    movi r0, ST_SUCCESS
    ret 12

; --------------------------------------------------------------------------
; isr(ctx)

mp_isr:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r1, 2
    push r1
    push r8
    call sm_bank
    ld8 r6, [r8+R_INTST]
    bz r6, isr_done
    and r1, r6, INT_RCV
    bz r1, isr_norx
    push r9
    call sm_rx_drain
isr_norx:
    and r1, r6, INT_TX
    bz r1, isr_done
    ; release the transmitted packet and acknowledge
    ld32 r1, [r9+CTX_LASTPNR]
    st8 [r8+R_PNR], r1
    movi r1, MMU_FREEPKT
    st16 [r8+R_MMU], r1
    movi r1, INT_TX | INT_ALLOC
    st8 [r8+R_INTST], r1
isr_done:
    movi r0, ST_SUCCESS
    ret 4

; sm_rx_drain(ctx) -- copy every queued frame out of the RX fifo
sm_rx_drain:
    ld32 r1, [sp+4]
    push r4, r5, r6, r7
    mov r7, r1
    ld32 r6, [r7+CTX_IO]
    ld32 r5, [r7+CTX_RXBUF]
    movi r1, 2
    push r1
    push r6
    call sm_bank
srd_loop:
    ld8 r1, [r6+R_INTST]
    and r1, r1, INT_RCV
    bz r1, srd_done
    ; window onto the head of the RX fifo
    movi r1, PTR_RCV | PTR_AUTOINC
    st16 [r6+R_PTR], r1
    ld16 r1, [r6+R_DATA]       ; status word (no error bits modeled)
    ld16 r4, [r6+R_DATA]       ; byte count
    and r4, r4, 0x7FF
    sub r4, r4, 6              ; payload bytes
    mov r2, r5
    mov r3, r4
srd_copy:
    bltu r3, 2, srd_tail
    ld16 r1, [r6+R_DATA]
    st16 [r2+0], r1
    add r2, r2, 2
    sub r3, r3, 2
    jmp srd_copy
srd_tail:
    bz r3, srd_ind
    ld8 r1, [r6+R_DATA]
    st8 [r2+0], r1
srd_ind:
    push r4
    push r5
    call @NdisMIndicateReceivePacket
    ; pop the fifo entry and return the packet to the free pool
    movi r1, MMU_POPRX
    st16 [r6+R_MMU], r1
    jmp srd_loop
srd_done:
    pop r7, r6, r5, r4
    ret 4

; --------------------------------------------------------------------------
; set_information(ctx, oid, buffer, length)

mp_set_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    ld32 r8, [r9+CTX_IO]
    beq r5, OID_FILTER, si_filter
    beq r5, OID_MAC_SET, si_mac
    beq r5, OID_MCAST, si_mcast
    beq r5, OID_DUPLEX, si_duplex
    beq r5, OID_LED, si_led
    movi r0, ST_NOT_SUPPORTED  ; no Wake-on-LAN on this chip
    ret 16

si_filter:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    st32 [r9+CTX_FILTER], r1
    movi r2, 0
    push r2
    push r8
    call sm_bank
    ld32 r1, [r9+CTX_FILTER]
    movi r0, RCR_RXEN
    and r1, r1, 0x20
    bz r1, sif_prog
    or r0, r0, RCR_PRMS
sif_prog:
    st16 [r8+R_RCR], r0
    movi r0, ST_SUCCESS
    ret 16

si_mac:
    bne r7, 6, si_badlen
    movi r2, 0
sim_copy:
    add r1, r6, r2
    ld8 r1, [r1+0]
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, sim_copy
    push r9
    call sm_set_mac
    movi r0, ST_SUCCESS
    ret 16

si_mcast:
    remu r1, r7, 6
    bnz r1, si_badlen
    movi r1, 0
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    divu r4, r7, 6
    movi r5, 0
simc_loop:
    bgeu r5, r4, simc_prog
    mul r1, r5, 6
    add r1, r6, r1
    push r1
    call crc_hash
    mov r1, r0
    shr r2, r1, 3
    and r1, r1, 7
    movi r3, 1
    shl r3, r3, r1
    add r2, r9, r2
    ld8 r1, [r2+CTX_MCAST]
    or r1, r1, r3
    st8 [r2+CTX_MCAST], r1
    add r5, r5, 1
    jmp simc_loop
simc_prog:
    push r9
    call sm_write_mcast
    movi r0, ST_SUCCESS
    ret 16

si_duplex:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, sid_store
    movi r1, 1
sid_store:
    st32 [r9+CTX_DUPLEX], r1
    movi r2, 0
    push r2
    push r8
    call sm_bank
    ld32 r1, [r9+CTX_DUPLEX]
    shl r1, r1, 11
    or r1, r1, TCR_TXENA
    st16 [r8+R_TCR], r1
    movi r0, ST_SUCCESS
    ret 16

si_led:
    bltu r7, 4, si_badlen
    movi r2, 0
    push r2
    push r8
    call sm_bank
    ld32 r1, [r6+0]
    and r1, r1, 0x3F
    st16 [r8+R_RPCR], r1
    movi r0, ST_SUCCESS
    ret 16

si_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; crc_hash(mac_ptr) -> multicast hash bit index (crc32 >> 26)
crc_hash:
    ld32 r1, [sp+4]
    push r4, r5
    movi r0, 0xFFFFFFFF
    movi r2, 0
crc_byte:
    add r3, r1, r2
    ld8 r3, [r3+0]
    xor r0, r0, r3
    movi r4, 0
crc_bit:
    and r5, r0, 1
    shr r0, r0, 1
    bz r5, crc_nopoly
    xor r0, r0, 0xEDB88320
crc_nopoly:
    add r4, r4, 1
    blt r4, 8, crc_bit
    add r2, r2, 1
    blt r2, 6, crc_byte
    xor r0, r0, 0xFFFFFFFF
    shr r0, r0, 26
    pop r5, r4
    ret 4

; --------------------------------------------------------------------------
; query_information(ctx, oid, buffer, length)

mp_query_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    beq r5, OID_MAC_CUR, qi_mac
    beq r5, OID_SPEED, qi_speed
    beq r5, OID_MEDIA, qi_media
    beq r5, OID_FILTER, qi_filter
    movi r0, ST_NOT_SUPPORTED
    ret 16
qi_mac:
    bltu r7, 6, qi_badlen
    movi r2, 0
qim_loop:
    add r1, r9, r2
    ld8 r1, [r1+CTX_MAC]
    add r3, r6, r2
    st8 [r3+0], r1
    add r2, r2, 1
    blt r2, 6, qim_loop
    movi r0, ST_SUCCESS
    ret 16
qi_speed:
    bltu r7, 4, qi_badlen
    movi r1, 10000000          ; 10 Mbps embedded chip
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_media:
    bltu r7, 4, qi_badlen
    movi r1, 1
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_filter:
    bltu r7, 4, qi_badlen
    ld32 r1, [r9+CTX_FILTER]
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; --------------------------------------------------------------------------
; reset(ctx) / halt(ctx)

mp_reset:
    ld32 r9, [sp+4]
    push r9
    call sm_hw_setup
    movi r0, ST_SUCCESS
    ret 4

mp_halt:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r1, 0
    push r1
    push r8
    call sm_bank
    movi r1, 0
    st16 [r8+R_TCR], r1
    st16 [r8+R_RCR], r1
    movi r0, ST_SUCCESS
    ret 4

; ==========================================================================
.data
miniport:
    .space 0x1C
