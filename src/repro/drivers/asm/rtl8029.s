; rtl8029.s -- "proprietary Windows" NDIS miniport for the RTL8029 (NE2000).
;
; Programming style: page-selected registers plus remote DMA through the
; 16/32-bit data port.  No bus mastering: every frame is copied by the CPU
; through the data window, which is why this driver saturates the CPU in
; the paper's Figure 6 measurements.
;
; Calling convention: stdcall (args pushed right to left, callee cleans),
; r0 = return value.  Entry points read all stack parameters up front;
; internal helpers clobber r0-r3 and preserve r4 and above.

.import NdisMRegisterMiniport
.import NdisMSetAttributes
.import NdisAllocateMemory
.import NdisMRegisterIoPortRange
.import NdisMRegisterInterrupt
.import NdisStallExecution
.import NdisWriteErrorLogEntry
.import NdisMSendComplete
.import NdisMIndicateReceivePacket

; ---- adapter-context layout (offsets into the OS-allocated state block)
.equ CTX_IO,     0x00          ; I/O port base
.equ CTX_MAC,    0x04          ; 6-byte station address
.equ CTX_FILTER, 0x0C          ; current packet filter
.equ CTX_DUPLEX, 0x10          ; 0/1 full-duplex flag
.equ CTX_RXBUF,  0x14          ; host staging buffer for receives
.equ CTX_NEXTPG, 0x18          ; next RX ring page to read
.equ CTX_MCAST,  0x20          ; 8-byte multicast hash shadow

; ---- NE2000 register file (page 0 unless noted)
.equ R_CR,     0x00
.equ R_PSTART, 0x01
.equ R_PSTOP,  0x02
.equ R_BNRY,   0x03
.equ R_TPSR,   0x04
.equ R_TBCR0,  0x05
.equ R_TBCR1,  0x06
.equ R_ISR,    0x07
.equ R_RSAR0,  0x08
.equ R_RSAR1,  0x09
.equ R_RBCR0,  0x0A
.equ R_RBCR1,  0x0B
.equ R_RCR,    0x0C
.equ R_TCR,    0x0D
.equ R_DCR,    0x0E
.equ R_IMR,    0x0F
.equ R_CURR,   0x07            ; page 1
.equ R_DATA,   0x10
.equ R_RESET,  0x1F

.equ ISR_PRX, 0x01
.equ ISR_PTX, 0x02
.equ ISR_OVW, 0x10
.equ ISR_RDC, 0x40

; packet-memory layout: 6 pages of TX staging, RX ring after it
.equ TX_PAGE,  0x40
.equ RX_START, 0x46
.equ RX_STOP,  0x80

; ---- NDIS constants
.equ ST_SUCCESS,        0x00000000
.equ ST_FAILURE,        0xC0000001
.equ ST_NOT_SUPPORTED,  0xC00000BB
.equ ST_INVALID_LENGTH, 0xC0010014
.equ OID_FILTER,  0x0001010E
.equ OID_SPEED,   0x00010107
.equ OID_MEDIA,   0x00010114
.equ OID_MAC_SET, 0x01010101
.equ OID_MAC_CUR, 0x01010102
.equ OID_MCAST,   0x01010103
.equ OID_DUPLEX,  0x00010203
.equ OID_WOL,     0xFD010106
.equ OID_LED,     0xFF010001
.equ MAX_FRAME, 1514

; ==========================================================================
.entry DriverEntry
.export DriverEntry

DriverEntry:
    movi r1, miniport
    movi r2, mp_initialize
    st32 [r1+0x00], r2
    movi r2, mp_send
    st32 [r1+0x04], r2
    movi r2, mp_isr
    st32 [r1+0x08], r2
    movi r2, mp_set_info
    st32 [r1+0x0C], r2
    movi r2, mp_query_info
    st32 [r1+0x10], r2
    movi r2, mp_reset
    st32 [r1+0x14], r2
    movi r2, mp_halt
    st32 [r1+0x18], r2
    push r1
    call @NdisMRegisterMiniport
    movi r0, ST_SUCCESS
    ret

; --------------------------------------------------------------------------
; initialize(ctx)

mp_initialize:
    ld32 r9, [sp+4]
    push r9
    call @NdisMSetAttributes
    movi r1, 0x20
    push r1
    call @NdisMRegisterIoPortRange
    st32 [r9+CTX_IO], r0
    mov r8, r0
    movi r1, 1536
    push r1
    call @NdisAllocateMemory
    st32 [r9+CTX_RXBUF], r0
    ; soft reset, then let the chip settle
    in8 r0, (r8+R_RESET)
    movi r1, 10
    push r1
    call @NdisStallExecution
    ; read the station address out of the PAR registers (page 1, stopped)
    movi r1, 0x41
    out8 (r8+R_CR), r1
    movi r2, 0
ini_mac:
    add r3, r8, r2
    in8 r1, (r3+1)
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, ini_mac
    ; operating defaults: directed + broadcast, half duplex, no multicast
    movi r1, 0x05
    st32 [r9+CTX_FILTER], r1
    movi r1, 0
    st32 [r9+CTX_DUPLEX], r1
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    push r9
    call ne_setup
    movi r1, 9
    push r1
    call @NdisMRegisterInterrupt
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; ne_setup(ctx) -- program the chip from the context shadow and start it

ne_setup:
    ld32 r1, [sp+4]
    ld32 r2, [r1+CTX_IO]
    movi r0, 0x01              ; STP, page 0
    out8 (r2+R_CR), r0
    ld32 r0, [r1+CTX_DUPLEX]
    shl r0, r0, 6              ; DCR.FDX
    out8 (r2+R_DCR), r0
    movi r0, 0
    out8 (r2+R_TCR), r0
    out8 (r2+R_RSAR0), r0
    out8 (r2+R_RSAR1), r0
    out8 (r2+R_RBCR0), r0
    out8 (r2+R_RBCR1), r0
    movi r0, RX_START
    out8 (r2+R_PSTART), r0
    out8 (r2+R_BNRY), r0
    st32 [r1+CTX_NEXTPG], r0
    movi r0, RX_STOP
    out8 (r2+R_PSTOP), r0
    ; receive configuration from the stored packet filter
    ld32 r3, [r1+CTX_FILTER]
    movi r0, 0x0C              ; AB | AM
    and r3, r3, 0x20
    bz r3, nes_rcr
    or r0, r0, 0x10            ; PRO
nes_rcr:
    out8 (r2+R_RCR), r0
    movi r0, 0xFF
    out8 (r2+R_ISR), r0        ; clear any stale interrupt causes
    push r1
    call ne_set_mac
    ; current page pointer (page 1), multicast filter, then go
    movi r0, 0x41
    out8 (r2+R_CR), r0
    movi r0, RX_START
    out8 (r2+R_CURR), r0
    push r1
    call ne_write_mar
    movi r0, 0x02              ; STA, page 0
    out8 (r2+R_CR), r0
    movi r0, ISR_PRX | ISR_PTX
    out8 (r2+R_IMR), r0
    ret 4

; ne_set_mac(ctx) -- program PAR0-5 from the context copy
ne_set_mac:
    ld32 r1, [sp+4]
    push r4
    ld32 r2, [r1+CTX_IO]
    movi r0, 0x41              ; page 1, stopped
    out8 (r2+R_CR), r0
    movi r3, 0
nsm_loop:
    add r4, r1, r3
    ld8 r4, [r4+CTX_MAC]
    add r0, r2, r3
    out8 (r0+1), r4
    add r3, r3, 1
    blt r3, 6, nsm_loop
    movi r0, 0x02              ; restart, page 0
    out8 (r2+R_CR), r0
    pop r4
    ret 4

; ne_write_mar(ctx) -- program MAR0-7 from the context hash shadow
ne_write_mar:
    ld32 r1, [sp+4]
    push r4
    ld32 r2, [r1+CTX_IO]
    movi r0, 0x41              ; page 1, stopped
    out8 (r2+R_CR), r0
    movi r3, 0
nwm_loop:
    add r4, r1, r3
    ld8 r4, [r4+CTX_MCAST]
    add r0, r2, r3
    out8 (r0+8), r4
    add r3, r3, 1
    blt r3, 8, nwm_loop
    movi r0, 0x02
    out8 (r2+R_CR), r0
    pop r4
    ret 4

; --------------------------------------------------------------------------
; send(ctx, packet, length)

mp_send:
    ld32 r9, [sp+4]
    ld32 r4, [sp+8]
    ld32 r5, [sp+12]
    ld32 r8, [r9+CTX_IO]
    bleu r5, MAX_FRAME, snd_ok
    movi r1, 0xBAD0001
    push r1
    call @NdisWriteErrorLogEntry
    movi r0, ST_INVALID_LENGTH
    ret 12
snd_ok:
    ; copy the frame into the TX staging pages via remote DMA
    push r5
    push r4
    movi r1, TX_PAGE * 256
    push r1
    push r8
    call ne_remote_write
    ; byte count + start page, then fire the transmitter
    out8 (r8+R_TBCR0), r5
    shr r1, r5, 8
    out8 (r8+R_TBCR1), r1
    movi r1, TX_PAGE
    out8 (r8+R_TPSR), r1
    movi r1, 0x06              ; STA | TXP
    out8 (r8+R_CR), r1
    movi r1, ST_SUCCESS
    push r1
    call @NdisMSendComplete
    movi r0, ST_SUCCESS
    ret 12

; ne_remote_write(io, ring_addr, src, count) -- CPU copy into packet memory
ne_remote_write:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
    ld32 r0, [sp+16]
    push r4, r5
    mov r4, r0
    out8 (r1+R_RSAR0), r2
    shr r5, r2, 8
    out8 (r1+R_RSAR1), r5
    out8 (r1+R_RBCR0), r4
    shr r5, r4, 8
    out8 (r1+R_RBCR1), r5
    movi r5, 0x12              ; STA | remote write
    out8 (r1+R_CR), r5
nrw_words:
    bltu r4, 4, nrw_tail
    ld32 r5, [r3+0]
    out32 (r1+R_DATA), r5
    add r3, r3, 4
    sub r4, r4, 4
    jmp nrw_words
nrw_tail:
    bz r4, nrw_wait
    ld8 r5, [r3+0]
    out8 (r1+R_DATA), r5
    add r3, r3, 1
    sub r4, r4, 1
    jmp nrw_tail
nrw_wait:
    in8 r5, (r1+R_ISR)         ; wait for remote-DMA completion
    and r5, r5, ISR_RDC
    bz r5, nrw_wait
    movi r5, ISR_RDC
    out8 (r1+R_ISR), r5
    pop r5, r4
    ret 16

; ne_remote_read(io, ring_addr, dst, count) -- CPU copy out of packet memory
ne_remote_read:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
    ld32 r0, [sp+16]
    push r4, r5
    mov r4, r0
    out8 (r1+R_RSAR0), r2
    shr r5, r2, 8
    out8 (r1+R_RSAR1), r5
    out8 (r1+R_RBCR0), r4
    shr r5, r4, 8
    out8 (r1+R_RBCR1), r5
    movi r5, 0x0A              ; STA | remote read
    out8 (r1+R_CR), r5
nrr_loop:
    bz r4, nrr_done
    in8 r5, (r1+R_DATA)
    st8 [r3+0], r5
    add r3, r3, 1
    sub r4, r4, 1
    jmp nrr_loop
nrr_done:
    pop r5, r4
    ret 16

; --------------------------------------------------------------------------
; isr(ctx)

mp_isr:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    in8 r6, (r8+R_ISR)
    bz r6, isr_done
    out8 (r8+R_ISR), r6        ; acknowledge everything we observed
    and r2, r6, ISR_PRX
    bz r2, isr_norx
    push r9
    call ne_rx_drain
isr_norx:
    and r2, r6, ISR_OVW
    bz r2, isr_done
    ; ring overflow: resynchronize both ring pointers
    movi r2, 0x41
    out8 (r8+R_CR), r2
    movi r2, RX_START
    out8 (r8+R_CURR), r2
    movi r3, 0x02
    out8 (r8+R_CR), r3
    out8 (r8+R_BNRY), r2
    st32 [r9+CTX_NEXTPG], r2
isr_done:
    movi r0, ST_SUCCESS
    ret 4

; ne_rx_drain(ctx) -- pull every completed frame out of the ring
ne_rx_drain:
    ld32 r1, [sp+4]
    push r4, r5, r6, r7, r8, r9, r10, r11
    mov r9, r1
    ld32 r8, [r9+CTX_IO]
    ld32 r5, [r9+CTX_RXBUF]
    movi r0, 0x42              ; page 1, keep running
    out8 (r8+R_CR), r0
    in8 r7, (r8+R_CURR)
    movi r0, 0x02
    out8 (r8+R_CR), r0
    ld32 r6, [r9+CTX_NEXTPG]
nrd_loop:
    beq r6, r7, nrd_done
    ; 4-byte ring header: status, next page, count lo, count hi
    shl r4, r6, 8
    movi r0, 4
    push r0
    push r5
    push r4
    push r8
    call ne_remote_read
    ld8 r11, [r5+1]            ; next packet page
    ld16 r10, [r5+2]
    sub r10, r10, 4            ; frame length (count includes the header)
    add r4, r4, 4
    ; first span runs at most to the end of packet memory
    movi r0, RX_STOP * 256
    sub r0, r0, r4
    mov r1, r10
    bleu r1, r0, nrd_span1
    mov r1, r0
nrd_span1:
    push r1
    push r5
    push r4
    push r8
    mov r4, r1                 ; keep span1 across the call
    call ne_remote_read
    sub r0, r10, r4            ; wrapped remainder
    bz r0, nrd_indicate
    add r1, r5, r4
    push r0
    push r1
    movi r0, RX_START * 256
    push r0
    push r8
    call ne_remote_read
nrd_indicate:
    push r10
    push r5
    call @NdisMIndicateReceivePacket
    mov r6, r11                ; consume: boundary follows next-page link
    st32 [r9+CTX_NEXTPG], r6
    out8 (r8+R_BNRY), r6
    jmp nrd_loop
nrd_done:
    pop r11, r10, r9, r8, r7, r6, r5, r4
    ret 4

; --------------------------------------------------------------------------
; set_information(ctx, oid, buffer, length)

mp_set_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    ld32 r8, [r9+CTX_IO]
    beq r5, OID_FILTER, si_filter
    beq r5, OID_MAC_SET, si_mac
    beq r5, OID_MCAST, si_mcast
    beq r5, OID_DUPLEX, si_duplex
    movi r0, ST_NOT_SUPPORTED  ; no Wake-on-LAN or LED on this chip
    ret 16

si_filter:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    st32 [r9+CTX_FILTER], r1
    movi r0, 0x0C              ; AB | AM
    and r1, r1, 0x20
    bz r1, sif_prog
    or r0, r0, 0x10            ; PRO
sif_prog:
    out8 (r8+R_RCR), r0
    movi r0, ST_SUCCESS
    ret 16

si_mac:
    bne r7, 6, si_badlen
    movi r2, 0
sim_copy:
    add r1, r6, r2
    ld8 r1, [r1+0]
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, sim_copy
    push r9
    call ne_set_mac
    movi r0, ST_SUCCESS
    ret 16

si_mcast:
    remu r1, r7, 6
    bnz r1, si_badlen
    movi r1, 0
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    divu r4, r7, 6             ; number of multicast addresses
    movi r5, 0
simc_loop:
    bgeu r5, r4, simc_prog
    mul r1, r5, 6
    add r1, r6, r1
    push r1
    call crc_hash
    mov r1, r0                 ; hash bit index 0..63
    shr r2, r1, 3
    and r1, r1, 7
    movi r3, 1
    shl r3, r3, r1
    add r2, r9, r2
    ld8 r1, [r2+CTX_MCAST]
    or r1, r1, r3
    st8 [r2+CTX_MCAST], r1
    add r5, r5, 1
    jmp simc_loop
simc_prog:
    push r9
    call ne_write_mar
    movi r0, ST_SUCCESS
    ret 16

si_duplex:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, sid_store
    movi r1, 1
sid_store:
    st32 [r9+CTX_DUPLEX], r1
    shl r1, r1, 6              ; DCR.FDX
    out8 (r8+R_DCR), r1
    movi r0, ST_SUCCESS
    ret 16

si_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; crc_hash(mac_ptr) -> multicast hash bit index (crc32 >> 26)
crc_hash:
    ld32 r1, [sp+4]
    push r4, r5
    movi r0, 0xFFFFFFFF
    movi r2, 0
crc_byte:
    add r3, r1, r2
    ld8 r3, [r3+0]
    xor r0, r0, r3
    movi r4, 0
crc_bit:
    and r5, r0, 1
    shr r0, r0, 1
    bz r5, crc_nopoly
    xor r0, r0, 0xEDB88320
crc_nopoly:
    add r4, r4, 1
    blt r4, 8, crc_bit
    add r2, r2, 1
    blt r2, 6, crc_byte
    xor r0, r0, 0xFFFFFFFF
    shr r0, r0, 26
    pop r5, r4
    ret 4

; --------------------------------------------------------------------------
; query_information(ctx, oid, buffer, length)

mp_query_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    beq r5, OID_MAC_CUR, qi_mac
    beq r5, OID_SPEED, qi_speed
    beq r5, OID_MEDIA, qi_media
    beq r5, OID_FILTER, qi_filter
    movi r0, ST_NOT_SUPPORTED
    ret 16
qi_mac:
    bltu r7, 6, qi_badlen
    movi r2, 0
qim_loop:
    add r1, r9, r2
    ld8 r1, [r1+CTX_MAC]
    add r3, r6, r2
    st8 [r3+0], r1
    add r2, r2, 1
    blt r2, 6, qim_loop
    movi r0, ST_SUCCESS
    ret 16
qi_speed:
    bltu r7, 4, qi_badlen
    movi r1, 10000000          ; 10 Mbps chip
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_media:
    bltu r7, 4, qi_badlen
    movi r1, 1                 ; connected
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_filter:
    bltu r7, 4, qi_badlen
    ld32 r1, [r9+CTX_FILTER]
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; --------------------------------------------------------------------------
; reset(ctx) / halt(ctx)

mp_reset:
    ld32 r9, [sp+4]
    push r9
    call ne_setup
    movi r0, ST_SUCCESS
    ret 4

mp_halt:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r1, 0
    out8 (r8+R_IMR), r1
    movi r1, 0x01              ; STP
    out8 (r8+R_CR), r1
    movi r0, ST_SUCCESS
    ret 4

; ==========================================================================
.data
miniport:
    .space 0x1C
