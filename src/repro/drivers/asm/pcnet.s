; pcnet.s -- "proprietary Windows" NDIS miniport for the AMD PCNet
; (Am79C970).
;
; Programming style: indirect register access -- the register number goes
; to RAP, the value moves through RDP (CSRs) or BDP (BCRs) -- plus
; bus-master DMA descriptor rings and an initialization block that the
; chip fetches from shared memory.
;
; Calling convention: stdcall, r0 = return value.  Entry points read all
; stack parameters up front; helpers clobber r0-r3 and preserve r4+.

.import NdisMRegisterMiniport
.import NdisMSetAttributes
.import NdisMAllocateSharedMemory
.import NdisGetPhysicalAddress
.import NdisMRegisterIoPortRange
.import NdisMRegisterInterrupt
.import NdisInitializeTimer
.import NdisSetTimer
.import NdisStallExecution
.import NdisWriteErrorLogEntry
.import NdisMSendComplete
.import NdisMIndicateReceivePacket

; ---- adapter-context layout
.equ CTX_IO,      0x00
.equ CTX_MAC,     0x04
.equ CTX_FILTER,  0x0C
.equ CTX_DUPLEX,  0x10
.equ CTX_INITBLK, 0x14         ; 32-byte initialization block
.equ CTX_RDRA,    0x18         ; RX descriptor ring base
.equ CTX_TDRA,    0x1C         ; TX descriptor ring base
.equ CTX_MCAST,   0x20         ; 8-byte logical address filter shadow
.equ CTX_RXBUFS,  0x28         ; four 1536-byte RX buffers
.equ CTX_TXBUF,   0x2C         ; one 1536-byte TX staging buffer
.equ CTX_RXIDX,   0x30
.equ CTX_TXIDX,   0x34
.equ CTX_PHYS,    0x38         ; scratch slot for shared-alloc phys address
.equ CTX_WOL,     0x3C
.equ CTX_LINK,    0x44
.equ CTX_TIMER,   0x48         ; link-watch timer structure

; ---- port map
.equ R_RDP,   0x10
.equ R_RAP,   0x12
.equ R_RESET, 0x14
.equ R_BDP,   0x16

.equ CSR0_INIT, 0x0001
.equ CSR0_STRT, 0x0002
.equ CSR0_STOP, 0x0004
.equ CSR0_TDMD, 0x0008
.equ CSR0_IENA, 0x0040
.equ CSR0_IDON, 0x0100
.equ CSR0_TINT, 0x0200
.equ CSR0_RINT, 0x0400
.equ CSR15_PROM, 0x8000
.equ DESC_OWN, 0x80000000

; ---- NDIS constants
.equ ST_SUCCESS,        0x00000000
.equ ST_FAILURE,        0xC0000001
.equ ST_NOT_SUPPORTED,  0xC00000BB
.equ ST_INVALID_LENGTH, 0xC0010014
.equ OID_FILTER,  0x0001010E
.equ OID_SPEED,   0x00010107
.equ OID_MEDIA,   0x00010114
.equ OID_MAC_SET, 0x01010101
.equ OID_MAC_CUR, 0x01010102
.equ OID_MCAST,   0x01010103
.equ OID_DUPLEX,  0x00010203
.equ OID_WOL,     0xFD010106
.equ OID_LED,     0xFF010001
.equ MAX_FRAME, 1514

; ==========================================================================
.entry DriverEntry
.export DriverEntry

DriverEntry:
    movi r1, miniport
    movi r2, mp_initialize
    st32 [r1+0x00], r2
    movi r2, mp_send
    st32 [r1+0x04], r2
    movi r2, mp_isr
    st32 [r1+0x08], r2
    movi r2, mp_set_info
    st32 [r1+0x0C], r2
    movi r2, mp_query_info
    st32 [r1+0x10], r2
    movi r2, mp_reset
    st32 [r1+0x14], r2
    movi r2, mp_halt
    st32 [r1+0x18], r2
    push r1
    call @NdisMRegisterMiniport
    movi r0, ST_SUCCESS
    ret

; ---- indirect register access helpers ------------------------------------

; pc_csr_write(io, num, value)
pc_csr_write:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
    out16 (r1+R_RAP), r2
    out16 (r1+R_RDP), r3
    ret 12

; pc_csr_read(io, num) -> value
pc_csr_read:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    out16 (r1+R_RAP), r2
    in16 r0, (r1+R_RDP)
    ret 8

; pc_bcr_write(io, num, value)
pc_bcr_write:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
    out16 (r1+R_RAP), r2
    out16 (r1+R_BDP), r3
    ret 12

; --------------------------------------------------------------------------
; initialize(ctx)

mp_initialize:
    ld32 r9, [sp+4]
    push r9
    call @NdisMSetAttributes
    movi r1, 0x20
    push r1
    call @NdisMRegisterIoPortRange
    st32 [r9+CTX_IO], r0
    mov r8, r0
    ; DMA-shared structures: init block, both rings, buffers
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 32
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_INITBLK], r0
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 64
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_RDRA], r0
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 64
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_TDRA], r0
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 6144
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_RXBUFS], r0
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 1536
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_TXBUF], r0
    ; station address from the APROM
    movi r2, 0
ini_mac:
    add r3, r8, r2
    in8 r1, (r3+0)
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, ini_mac
    ; operating defaults
    movi r1, 0x05
    st32 [r9+CTX_FILTER], r1
    movi r1, 0
    st32 [r9+CTX_DUPLEX], r1
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    st32 [r9+CTX_WOL], r1
    push r9
    call pc_hw_setup
    movi r1, 10
    push r1
    call @NdisMRegisterInterrupt
    ; periodic link watchdog
    movi r1, mp_timer
    push r1
    add r1, r9, CTX_TIMER
    push r1
    call @NdisInitializeTimer
    movi r1, 1000
    push r1
    add r1, r9, CTX_TIMER
    push r1
    call @NdisSetTimer
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; pc_hw_setup(ctx) -- rebuild the init block + rings and restart the chip

pc_hw_setup:
    ld32 r1, [sp+4]
    push r4, r5, r6, r7
    mov r7, r1
    ld32 r6, [r7+CTX_IO]
    in16 r0, (r6+R_RESET)      ; soft reset stops the chip
    ; --- initialization block
    ld32 r5, [r7+CTX_INITBLK]
    ld32 r0, [r7+CTX_FILTER]
    and r0, r0, 0x20
    bz r0, phs_mode
    movi r0, CSR15_PROM
phs_mode:
    st16 [r5+0], r0            ; mode
    movi r0, 4
    st16 [r5+2], r0            ; rlen
    st16 [r5+4], r0            ; tlen
    movi r0, 0
    st16 [r5+6], r0
    st16 [r5+14], r0
    movi r4, 0
phs_mac:
    add r0, r7, r4
    ld8 r0, [r0+CTX_MAC]
    add r1, r5, r4
    st8 [r1+8], r0             ; padr
    add r4, r4, 1
    blt r4, 6, phs_mac
    movi r4, 0
phs_ladrf:
    add r0, r7, r4
    ld8 r0, [r0+CTX_MCAST]
    add r1, r5, r4
    st8 [r1+16], r0            ; ladrf
    add r4, r4, 1
    blt r4, 8, phs_ladrf
    ld32 r0, [r7+CTX_RDRA]
    st32 [r5+24], r0
    ld32 r0, [r7+CTX_TDRA]
    st32 [r5+28], r0
    ; --- RX descriptors: four device-owned 1536-byte buffers
    ld32 r4, [r7+CTX_RDRA]
    ld32 r3, [r7+CTX_RXBUFS]
    movi r2, 0
phs_rxd:
    st32 [r4+0], r3
    movi r0, 1536
    st32 [r4+4], r0
    movi r0, DESC_OWN
    st32 [r4+8], r0
    movi r0, 0
    st32 [r4+12], r0
    add r3, r3, 1536
    add r4, r4, 16
    add r2, r2, 1
    blt r2, 4, phs_rxd
    ; --- TX descriptors start host-owned and empty
    ld32 r4, [r7+CTX_TDRA]
    movi r2, 0
phs_txd:
    movi r0, 0
    st32 [r4+0], r0
    st32 [r4+4], r0
    st32 [r4+8], r0
    st32 [r4+12], r0
    add r4, r4, 16
    add r2, r2, 1
    blt r2, 4, phs_txd
    movi r0, 0
    st32 [r7+CTX_RXIDX], r0
    st32 [r7+CTX_TXIDX], r0
    ; --- point the chip at the init block and start it
    movi r0, 0xFFFF
    and r2, r5, r0
    push r2
    movi r0, 1
    push r0
    push r6
    call pc_csr_write
    shr r2, r5, 16
    push r2
    movi r0, 2
    push r0
    push r6
    call pc_csr_write
    movi r2, CSR0_INIT
    push r2
    movi r0, 0
    push r0
    push r6
    call pc_csr_write
phs_idon:
    movi r0, 0
    push r0
    push r6
    call pc_csr_read
    and r0, r0, CSR0_IDON
    bz r0, phs_idon
    movi r2, CSR0_IDON | CSR0_IENA | CSR0_STRT
    push r2
    movi r0, 0
    push r0
    push r6
    call pc_csr_write
    ; duplex + Wake-on-LAN from the context shadow
    ld32 r2, [r7+CTX_DUPLEX]
    push r2
    movi r0, 9
    push r0
    push r6
    call pc_bcr_write
    ld32 r2, [r7+CTX_WOL]
    push r2
    movi r0, 7
    push r0
    push r6
    call pc_bcr_write
    pop r7, r6, r5, r4
    ret 4

; --------------------------------------------------------------------------
; send(ctx, packet, length)

mp_send:
    ld32 r9, [sp+4]
    ld32 r4, [sp+8]
    ld32 r5, [sp+12]
    ld32 r8, [r9+CTX_IO]
    bleu r5, MAX_FRAME, snd_ok
    movi r1, 0xBAD0001
    push r1
    call @NdisWriteErrorLogEntry
    movi r0, ST_INVALID_LENGTH
    ret 12
snd_ok:
    ld32 r7, [r9+CTX_TXBUF]
    push r5
    push r4
    push r7
    call copy_buf
    push r7
    call @NdisGetPhysicalAddress
    ; fill the next TX descriptor; the OWN bit hands it to the chip
    ld32 r6, [r9+CTX_TXIDX]
    mul r7, r6, 16
    ld32 r2, [r9+CTX_TDRA]
    add r7, r7, r2
    st32 [r7+0], r0
    st32 [r7+4], r5
    movi r0, 0
    st32 [r7+12], r0
    movi r0, DESC_OWN
    st32 [r7+8], r0
    movi r2, CSR0_TDMD | CSR0_IENA
    push r2
    movi r0, 0
    push r0
    push r8
    call pc_csr_write
    ; the chip clears OWN once the frame is on the wire
    ld32 r0, [r7+8]
    and r0, r0, DESC_OWN
    bz r0, snd_done
    movi r1, 0xBAD0002
    push r1
    call @NdisWriteErrorLogEntry
    movi r1, ST_FAILURE
    push r1
    call @NdisMSendComplete
    movi r0, ST_FAILURE
    ret 12
snd_done:
    add r6, r6, 1
    and r6, r6, 3
    st32 [r9+CTX_TXIDX], r6
    movi r1, ST_SUCCESS
    push r1
    call @NdisMSendComplete
    movi r0, ST_SUCCESS
    ret 12

; copy_buf(dst, src, len) -- word copy with byte tail
copy_buf:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
cb_words:
    bltu r3, 4, cb_tail
    ld32 r0, [r2+0]
    st32 [r1+0], r0
    add r1, r1, 4
    add r2, r2, 4
    sub r3, r3, 4
    jmp cb_words
cb_tail:
    bz r3, cb_done
    ld8 r0, [r2+0]
    st8 [r1+0], r0
    add r1, r1, 1
    add r2, r2, 1
    sub r3, r3, 1
    jmp cb_tail
cb_done:
    ret 12

; --------------------------------------------------------------------------
; isr(ctx)

mp_isr:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r0, 0
    push r0
    push r8
    call pc_csr_read
    mov r6, r0                 ; CSR0 snapshot
    and r1, r6, CSR0_IDON | CSR0_TINT | CSR0_RINT
    bz r1, isr_done
    or r1, r1, CSR0_IENA       ; ack what we saw, keep interrupts on
    push r1
    movi r0, 0
    push r0
    push r8
    call pc_csr_write
    and r1, r6, CSR0_RINT
    bz r1, isr_done
    push r9
    call pc_rx_drain
isr_done:
    movi r0, ST_SUCCESS
    ret 4

; pc_rx_drain(ctx) -- hand every host-owned RX descriptor up the stack
pc_rx_drain:
    ld32 r1, [sp+4]
    push r4, r5, r6, r9
    mov r9, r1
    ld32 r5, [r9+CTX_RDRA]
    ld32 r6, [r9+CTX_RXIDX]
prd_loop:
    mul r4, r6, 16
    add r4, r4, r5
    ld32 r1, [r4+8]
    and r1, r1, DESC_OWN
    bnz r1, prd_done           ; still chip-owned: ring is drained
    ld32 r1, [r4+12]           ; message length
    push r1
    ld32 r2, [r4+0]            ; buffer address
    push r2
    call @NdisMIndicateReceivePacket
    movi r1, 0
    st32 [r4+12], r1
    movi r1, DESC_OWN          ; recycle the descriptor to the chip
    st32 [r4+8], r1
    add r6, r6, 1
    and r6, r6, 3
    jmp prd_loop
prd_done:
    st32 [r9+CTX_RXIDX], r6
    pop r9, r6, r5, r4
    ret 4

; --------------------------------------------------------------------------
; set_information(ctx, oid, buffer, length)

mp_set_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    ld32 r8, [r9+CTX_IO]
    beq r5, OID_FILTER, si_filter
    beq r5, OID_MAC_SET, si_mac
    beq r5, OID_MCAST, si_mcast
    beq r5, OID_DUPLEX, si_duplex
    beq r5, OID_WOL, si_wol
    beq r5, OID_LED, si_led
    movi r0, ST_NOT_SUPPORTED
    ret 16

si_filter:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    st32 [r9+CTX_FILTER], r1
    movi r2, 0
    and r1, r1, 0x20
    bz r1, sif_prog
    movi r2, CSR15_PROM
sif_prog:
    push r2
    movi r0, 15
    push r0
    push r8
    call pc_csr_write
    movi r0, ST_SUCCESS
    ret 16

si_mac:
    bne r7, 6, si_badlen
    movi r2, 0
sim_copy:
    add r1, r6, r2
    ld8 r1, [r1+0]
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, sim_copy
    ; the station address lives in the init block: re-init the chip
    push r9
    call pc_hw_setup
    movi r0, ST_SUCCESS
    ret 16

si_mcast:
    remu r1, r7, 6
    bnz r1, si_badlen
    movi r1, 0
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    divu r4, r7, 6
    movi r5, 0
simc_loop:
    bgeu r5, r4, simc_prog
    mul r1, r5, 6
    add r1, r6, r1
    push r1
    call crc_hash
    mov r1, r0
    shr r2, r1, 3
    and r1, r1, 7
    movi r3, 1
    shl r3, r3, r1
    add r2, r9, r2
    ld8 r1, [r2+CTX_MCAST]
    or r1, r1, r3
    st8 [r2+CTX_MCAST], r1
    add r5, r5, 1
    jmp simc_loop
simc_prog:
    ; program the logical address filter through CSR8-11
    movi r5, 0
simp_loop:
    mul r1, r5, 2
    add r2, r9, r1
    ld8 r1, [r2+CTX_MCAST]
    ld8 r2, [r2+CTX_MCAST+1]
    shl r2, r2, 8
    or r2, r2, r1
    push r2
    add r1, r5, 8
    push r1
    push r8
    call pc_csr_write
    add r5, r5, 1
    blt r5, 4, simp_loop
    movi r0, ST_SUCCESS
    ret 16

si_duplex:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, sid_store
    movi r1, 1
sid_store:
    st32 [r9+CTX_DUPLEX], r1
    push r1
    movi r0, 9
    push r0
    push r8
    call pc_bcr_write          ; BCR9.FDEN
    movi r0, ST_SUCCESS
    ret 16

si_wol:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, siw_store
    movi r1, 1
siw_store:
    st32 [r9+CTX_WOL], r1
    push r1
    movi r0, 7
    push r0
    push r8
    call pc_bcr_write          ; BCR7.MAGIC
    movi r0, ST_SUCCESS
    ret 16

si_led:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    and r1, r1, 0xF
    push r1
    movi r0, 4
    push r0
    push r8
    call pc_bcr_write          ; BCR4 LED control
    movi r0, ST_SUCCESS
    ret 16

si_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; crc_hash(mac_ptr) -> multicast hash bit index (crc32 >> 26)
crc_hash:
    ld32 r1, [sp+4]
    push r4, r5
    movi r0, 0xFFFFFFFF
    movi r2, 0
crc_byte:
    add r3, r1, r2
    ld8 r3, [r3+0]
    xor r0, r0, r3
    movi r4, 0
crc_bit:
    and r5, r0, 1
    shr r0, r0, 1
    bz r5, crc_nopoly
    xor r0, r0, 0xEDB88320
crc_nopoly:
    add r4, r4, 1
    blt r4, 8, crc_bit
    add r2, r2, 1
    blt r2, 6, crc_byte
    xor r0, r0, 0xFFFFFFFF
    shr r0, r0, 26
    pop r5, r4
    ret 4

; --------------------------------------------------------------------------
; query_information(ctx, oid, buffer, length)

mp_query_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    beq r5, OID_MAC_CUR, qi_mac
    beq r5, OID_SPEED, qi_speed
    beq r5, OID_MEDIA, qi_media
    beq r5, OID_FILTER, qi_filter
    movi r0, ST_NOT_SUPPORTED
    ret 16
qi_mac:
    bltu r7, 6, qi_badlen
    movi r2, 0
qim_loop:
    add r1, r9, r2
    ld8 r1, [r1+CTX_MAC]
    add r3, r6, r2
    st8 [r3+0], r1
    add r2, r2, 1
    blt r2, 6, qim_loop
    movi r0, ST_SUCCESS
    ret 16
qi_speed:
    bltu r7, 4, qi_badlen
    movi r1, 100000000         ; 100 Mbps chip
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_media:
    bltu r7, 4, qi_badlen
    movi r1, 1
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_filter:
    bltu r7, 4, qi_badlen
    ld32 r1, [r9+CTX_FILTER]
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; --------------------------------------------------------------------------
; timer(ctx) -- periodic link watchdog

mp_timer:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r0, 0
    push r0
    push r8
    call pc_csr_read
    and r0, r0, CSR0_STRT      ; running == link up
    st32 [r9+CTX_LINK], r0
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; reset(ctx) / halt(ctx)

mp_reset:
    ld32 r9, [sp+4]
    push r9
    call pc_hw_setup
    movi r0, ST_SUCCESS
    ret 4

mp_halt:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r1, CSR0_STOP
    push r1
    movi r0, 0
    push r0
    push r8
    call pc_csr_write
    movi r0, ST_SUCCESS
    ret 4

; ==========================================================================
.data
miniport:
    .space 0x1C
