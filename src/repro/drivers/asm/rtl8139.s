; rtl8139.s -- "proprietary Windows" NDIS miniport for the Realtek RTL8139.
;
; Programming style: bus-master DMA.  Four TX descriptor slots whose
; staging buffers the chip fetches from shared memory, and an RX ring the
; chip writes directly into shared memory.  Carries the full Table-2
; feature set for this chip: Wake-on-LAN (Config3 magic packet), LED
; control (Config1) and full duplex (BMCR).
;
; Calling convention: stdcall, r0 = return value.  Entry points read all
; stack parameters up front; helpers clobber r0-r3 and preserve r4+.

.import NdisMRegisterMiniport
.import NdisMSetAttributes
.import NdisMAllocateSharedMemory
.import NdisGetPhysicalAddress
.import NdisMRegisterIoPortRange
.import NdisMRegisterInterrupt
.import NdisInitializeTimer
.import NdisSetTimer
.import NdisStallExecution
.import NdisWriteErrorLogEntry
.import NdisMSendComplete
.import NdisMIndicateReceivePacket

; ---- adapter-context layout
.equ CTX_IO,     0x00
.equ CTX_MAC,    0x04
.equ CTX_FILTER, 0x0C
.equ CTX_DUPLEX, 0x10
.equ CTX_RXRING, 0x14          ; physical base of the RX ring
.equ CTX_RXOFF,  0x18          ; driver read offset into the ring
.equ CTX_TXSLOT, 0x1C          ; next TX descriptor slot (0..3)
.equ CTX_MCAST,  0x20          ; 8-byte multicast hash shadow
.equ CTX_TXBUF,  0x28          ; base of the four TX staging buffers
.equ CTX_LINK,   0x2C
.equ CTX_WOL,    0x30
.equ CTX_PHYS,   0x34          ; scratch slot for shared-alloc phys address
.equ CTX_TIMER,  0x40          ; link-watch timer structure

; ---- register file (port I/O)
.equ R_IDR,     0x00
.equ R_MAR,     0x08
.equ R_TSD,     0x10
.equ R_TSAD,    0x20
.equ R_RBSTART, 0x30
.equ R_CR,      0x37
.equ R_CAPR,    0x38
.equ R_CBR,     0x3A
.equ R_IMR,     0x3C
.equ R_ISR,     0x3E
.equ R_RCR,     0x44
.equ R_CFG9346, 0x50
.equ R_CONFIG1, 0x52
.equ R_CONFIG3, 0x59
.equ R_BMCR,    0x64

.equ CR_TE,    0x04
.equ CR_RE,    0x08
.equ CR_RST,   0x10
.equ ISR_ROK,  0x01
.equ ISR_TOK,  0x04
.equ TSD_TOK,  0x8000
.equ RCR_AAP,  0x01
.equ RX_WRAP,  6160            ; ring wraps past RX_RING_SIZE - 2048

; ---- NDIS constants
.equ ST_SUCCESS,        0x00000000
.equ ST_FAILURE,        0xC0000001
.equ ST_NOT_SUPPORTED,  0xC00000BB
.equ ST_INVALID_LENGTH, 0xC0010014
.equ OID_FILTER,  0x0001010E
.equ OID_SPEED,   0x00010107
.equ OID_MEDIA,   0x00010114
.equ OID_MAC_SET, 0x01010101
.equ OID_MAC_CUR, 0x01010102
.equ OID_MCAST,   0x01010103
.equ OID_DUPLEX,  0x00010203
.equ OID_WOL,     0xFD010106
.equ OID_LED,     0xFF010001
.equ MAX_FRAME, 1514

; ==========================================================================
.entry DriverEntry
.export DriverEntry

DriverEntry:
    movi r1, miniport
    movi r2, mp_initialize
    st32 [r1+0x00], r2
    movi r2, mp_send
    st32 [r1+0x04], r2
    movi r2, mp_isr
    st32 [r1+0x08], r2
    movi r2, mp_set_info
    st32 [r1+0x0C], r2
    movi r2, mp_query_info
    st32 [r1+0x10], r2
    movi r2, mp_reset
    st32 [r1+0x14], r2
    movi r2, mp_halt
    st32 [r1+0x18], r2
    push r1
    call @NdisMRegisterMiniport
    movi r0, ST_SUCCESS
    ret

; --------------------------------------------------------------------------
; initialize(ctx)

mp_initialize:
    ld32 r9, [sp+4]
    push r9
    call @NdisMSetAttributes
    movi r1, 0x100
    push r1
    call @NdisMRegisterIoPortRange
    st32 [r9+CTX_IO], r0
    mov r8, r0
    ; DMA-shared RX ring (8K + 16 bytes of slack)
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 0x2010
    push r1
    call @NdisMAllocateSharedMemory
    ld32 r1, [r9+CTX_PHYS]
    st32 [r9+CTX_RXRING], r1
    ; DMA-shared TX staging area: four 1536-byte slots
    add r1, r9, CTX_PHYS
    push r1
    movi r1, 6144
    push r1
    call @NdisMAllocateSharedMemory
    st32 [r9+CTX_TXBUF], r0
    ; read the burned-in station address
    movi r2, 0
ini_mac:
    add r3, r8, r2
    in8 r1, (r3+R_IDR)
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, ini_mac
    ; operating defaults
    movi r1, 0x05
    st32 [r9+CTX_FILTER], r1
    movi r1, 0
    st32 [r9+CTX_DUPLEX], r1
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    st32 [r9+CTX_WOL], r1
    push r9
    call rtl_hw_setup
    movi r1, 11
    push r1
    call @NdisMRegisterInterrupt
    ; periodic link watchdog
    movi r1, mp_timer
    push r1
    add r1, r9, CTX_TIMER
    push r1
    call @NdisInitializeTimer
    movi r1, 1000
    push r1
    add r1, r9, CTX_TIMER
    push r1
    call @NdisSetTimer
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; rtl_hw_setup(ctx) -- reset the chip and reprogram it from the context

rtl_hw_setup:
    ld32 r1, [sp+4]
    push r4, r5
    mov r5, r1
    ld32 r4, [r5+CTX_IO]
    movi r0, CR_RST
    out8 (r4+R_CR), r0
rhs_wait:
    in8 r0, (r4+R_CR)          ; wait for the reset bit to clear
    and r0, r0, CR_RST
    bnz r0, rhs_wait
    push r5
    call rtl_set_macregs
    push r5
    call rtl_write_mar
    ld32 r0, [r5+CTX_RXRING]
    out32 (r4+R_RBSTART), r0
    movi r0, 0
    st32 [r5+CTX_RXOFF], r0
    st32 [r5+CTX_TXSLOT], r0
    movi r0, 0xFFF0
    out16 (r4+R_CAPR), r0
    ; receive configuration from the stored packet filter
    ld32 r1, [r5+CTX_FILTER]
    movi r0, 0x0E              ; APM | AM | AB
    and r1, r1, 0x20
    bz r1, rhs_rcr
    or r0, r0, RCR_AAP
rhs_rcr:
    out32 (r4+R_RCR), r0
    ; duplex (BMCR) and Wake-on-LAN (Config3) from the context shadow
    ld32 r0, [r5+CTX_DUPLEX]
    shl r0, r0, 8
    or r0, r0, 0x2000
    out16 (r4+R_BMCR), r0
    movi r0, 0xC0
    out8 (r4+R_CFG9346), r0
    ld32 r0, [r5+CTX_WOL]
    shl r0, r0, 5
    out8 (r4+R_CONFIG3), r0
    movi r0, 0
    out8 (r4+R_CFG9346), r0
    ; enable the engines, clear stale causes, unmask
    movi r0, CR_RE | CR_TE
    out8 (r4+R_CR), r0
    movi r0, 0xFFFF
    out16 (r4+R_ISR), r0
    movi r0, ISR_ROK | ISR_TOK
    out16 (r4+R_IMR), r0
    pop r5, r4
    ret 4

; rtl_set_macregs(ctx) -- program IDR0-5 from the context copy
rtl_set_macregs:
    ld32 r1, [sp+4]
    push r4
    ld32 r2, [r1+CTX_IO]
    movi r3, 0
rsm_loop:
    add r4, r1, r3
    ld8 r4, [r4+CTX_MAC]
    add r0, r2, r3
    out8 (r0+R_IDR), r4
    add r3, r3, 1
    blt r3, 6, rsm_loop
    pop r4
    ret 4

; rtl_write_mar(ctx) -- program MAR0-7 from the context hash shadow
rtl_write_mar:
    ld32 r1, [sp+4]
    push r4
    ld32 r2, [r1+CTX_IO]
    movi r3, 0
rwm_loop:
    add r4, r1, r3
    ld8 r4, [r4+CTX_MCAST]
    add r0, r2, r3
    out8 (r0+R_MAR), r4
    add r3, r3, 1
    blt r3, 8, rwm_loop
    pop r4
    ret 4

; --------------------------------------------------------------------------
; send(ctx, packet, length)

mp_send:
    ld32 r9, [sp+4]
    ld32 r4, [sp+8]
    ld32 r5, [sp+12]
    ld32 r8, [r9+CTX_IO]
    bleu r5, MAX_FRAME, snd_ok
    movi r1, 0xBAD0001
    push r1
    call @NdisWriteErrorLogEntry
    movi r0, ST_INVALID_LENGTH
    ret 12
snd_ok:
    ; stage the frame in this slot's DMA buffer
    ld32 r6, [r9+CTX_TXSLOT]
    mul r7, r6, 1536
    ld32 r1, [r9+CTX_TXBUF]
    add r7, r7, r1
    push r5
    push r4
    push r7
    call copy_buf
    push r7
    call @NdisGetPhysicalAddress
    ; hand the buffer to the chip; writing the size starts the DMA
    mul r2, r6, 4
    add r3, r8, r2
    out32 (r3+R_TSAD), r0
    out32 (r3+R_TSD), r5
    in32 r1, (r3+R_TSD)
    and r1, r1, TSD_TOK
    bnz r1, snd_done
    movi r1, 0xBAD0002         ; transmitter did not complete
    push r1
    call @NdisWriteErrorLogEntry
    movi r1, ST_FAILURE
    push r1
    call @NdisMSendComplete
    movi r0, ST_FAILURE
    ret 12
snd_done:
    add r6, r6, 1
    and r6, r6, 3
    st32 [r9+CTX_TXSLOT], r6
    movi r1, ST_SUCCESS
    push r1
    call @NdisMSendComplete
    movi r0, ST_SUCCESS
    ret 12

; copy_buf(dst, src, len) -- word copy with byte tail
copy_buf:
    ld32 r1, [sp+4]
    ld32 r2, [sp+8]
    ld32 r3, [sp+12]
cb_words:
    bltu r3, 4, cb_tail
    ld32 r0, [r2+0]
    st32 [r1+0], r0
    add r1, r1, 4
    add r2, r2, 4
    sub r3, r3, 4
    jmp cb_words
cb_tail:
    bz r3, cb_done
    ld8 r0, [r2+0]
    st8 [r1+0], r0
    add r1, r1, 1
    add r2, r2, 1
    sub r3, r3, 1
    jmp cb_tail
cb_done:
    ret 12

; --------------------------------------------------------------------------
; isr(ctx)

mp_isr:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    in16 r6, (r8+R_ISR)
    bz r6, isr_done
    out16 (r8+R_ISR), r6       ; acknowledge everything we observed
    and r2, r6, ISR_ROK
    bz r2, isr_done
    push r9
    call rtl_rx_drain
isr_done:
    movi r0, ST_SUCCESS
    ret 4

; rtl_rx_drain(ctx) -- walk the ring up to the chip's write pointer
rtl_rx_drain:
    ld32 r1, [sp+4]
    push r4, r5, r6, r7, r8, r9
    mov r9, r1
    ld32 r8, [r9+CTX_IO]
    ld32 r5, [r9+CTX_RXRING]
    ld32 r6, [r9+CTX_RXOFF]
rrd_loop:
    in16 r7, (r8+R_CBR)
    beq r6, r7, rrd_done
    add r4, r5, r6             ; current ring record
    ld16 r1, [r4+0]            ; status
    and r1, r1, 1
    bz r1, rrd_done            ; not a good frame: stop walking
    ld16 r7, [r4+2]            ; length (frame + 4 FCS bytes)
    sub r0, r7, 4
    push r0
    add r1, r4, 4
    push r1
    call @NdisMIndicateReceivePacket
    ; advance to the next dword-aligned record, mirroring the chip's wrap
    add r1, r7, 7
    movi r2, 0xFFFFFFFC
    and r1, r1, r2
    add r6, r6, r1
    bleu r6, RX_WRAP, rrd_capr
    movi r6, 0
rrd_capr:
    sub r1, r6, 16
    out16 (r8+R_CAPR), r1
    jmp rrd_loop
rrd_done:
    st32 [r9+CTX_RXOFF], r6
    pop r9, r8, r7, r6, r5, r4
    ret 4

; --------------------------------------------------------------------------
; set_information(ctx, oid, buffer, length)

mp_set_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    ld32 r8, [r9+CTX_IO]
    beq r5, OID_FILTER, si_filter
    beq r5, OID_MAC_SET, si_mac
    beq r5, OID_MCAST, si_mcast
    beq r5, OID_DUPLEX, si_duplex
    beq r5, OID_WOL, si_wol
    beq r5, OID_LED, si_led
    movi r0, ST_NOT_SUPPORTED
    ret 16

si_filter:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    st32 [r9+CTX_FILTER], r1
    movi r0, 0x0E
    and r1, r1, 0x20
    bz r1, sif_prog
    or r0, r0, RCR_AAP
sif_prog:
    out32 (r8+R_RCR), r0
    movi r0, ST_SUCCESS
    ret 16

si_mac:
    bne r7, 6, si_badlen
    movi r2, 0
sim_copy:
    add r1, r6, r2
    ld8 r1, [r1+0]
    add r3, r9, r2
    st8 [r3+CTX_MAC], r1
    add r2, r2, 1
    blt r2, 6, sim_copy
    push r9
    call rtl_set_macregs
    movi r0, ST_SUCCESS
    ret 16

si_mcast:
    remu r1, r7, 6
    bnz r1, si_badlen
    movi r1, 0
    st32 [r9+CTX_MCAST], r1
    st32 [r9+CTX_MCAST+4], r1
    divu r4, r7, 6
    movi r5, 0
simc_loop:
    bgeu r5, r4, simc_prog
    mul r1, r5, 6
    add r1, r6, r1
    push r1
    call crc_hash
    mov r1, r0
    shr r2, r1, 3
    and r1, r1, 7
    movi r3, 1
    shl r3, r3, r1
    add r2, r9, r2
    ld8 r1, [r2+CTX_MCAST]
    or r1, r1, r3
    st8 [r2+CTX_MCAST], r1
    add r5, r5, 1
    jmp simc_loop
simc_prog:
    push r9
    call rtl_write_mar
    movi r0, ST_SUCCESS
    ret 16

si_duplex:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, sid_store
    movi r1, 1
sid_store:
    st32 [r9+CTX_DUPLEX], r1
    shl r1, r1, 8              ; BMCR.FDX
    or r1, r1, 0x2000
    out16 (r8+R_BMCR), r1
    movi r0, ST_SUCCESS
    ret 16

si_wol:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    bz r1, siw_store
    movi r1, 1
siw_store:
    st32 [r9+CTX_WOL], r1
    movi r2, 0xC0              ; unlock the config registers
    out8 (r8+R_CFG9346), r2
    shl r1, r1, 5              ; Config3.MAGIC
    out8 (r8+R_CONFIG3), r1
    movi r2, 0
    out8 (r8+R_CFG9346), r2
    movi r0, ST_SUCCESS
    ret 16

si_led:
    bltu r7, 4, si_badlen
    ld32 r1, [r6+0]
    and r1, r1, 3
    shl r1, r1, 6              ; Config1 LED mode bits
    movi r2, 0xC0
    out8 (r8+R_CFG9346), r2
    out8 (r8+R_CONFIG1), r1
    movi r2, 0
    out8 (r8+R_CFG9346), r2
    movi r0, ST_SUCCESS
    ret 16

si_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; crc_hash(mac_ptr) -> multicast hash bit index (crc32 >> 26)
crc_hash:
    ld32 r1, [sp+4]
    push r4, r5
    movi r0, 0xFFFFFFFF
    movi r2, 0
crc_byte:
    add r3, r1, r2
    ld8 r3, [r3+0]
    xor r0, r0, r3
    movi r4, 0
crc_bit:
    and r5, r0, 1
    shr r0, r0, 1
    bz r5, crc_nopoly
    xor r0, r0, 0xEDB88320
crc_nopoly:
    add r4, r4, 1
    blt r4, 8, crc_bit
    add r2, r2, 1
    blt r2, 6, crc_byte
    xor r0, r0, 0xFFFFFFFF
    shr r0, r0, 26
    pop r5, r4
    ret 4

; --------------------------------------------------------------------------
; query_information(ctx, oid, buffer, length)

mp_query_info:
    ld32 r9, [sp+4]
    ld32 r5, [sp+8]
    ld32 r6, [sp+12]
    ld32 r7, [sp+16]
    beq r5, OID_MAC_CUR, qi_mac
    beq r5, OID_SPEED, qi_speed
    beq r5, OID_MEDIA, qi_media
    beq r5, OID_FILTER, qi_filter
    movi r0, ST_NOT_SUPPORTED
    ret 16
qi_mac:
    bltu r7, 6, qi_badlen
    movi r2, 0
qim_loop:
    add r1, r9, r2
    ld8 r1, [r1+CTX_MAC]
    add r3, r6, r2
    st8 [r3+0], r1
    add r2, r2, 1
    blt r2, 6, qim_loop
    movi r0, ST_SUCCESS
    ret 16
qi_speed:
    bltu r7, 4, qi_badlen
    movi r1, 100000000         ; 100 Mbps chip
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_media:
    bltu r7, 4, qi_badlen
    movi r1, 1
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_filter:
    bltu r7, 4, qi_badlen
    ld32 r1, [r9+CTX_FILTER]
    st32 [r6+0], r1
    movi r0, ST_SUCCESS
    ret 16
qi_badlen:
    movi r0, ST_INVALID_LENGTH
    ret 16

; --------------------------------------------------------------------------
; timer(ctx) -- periodic link watchdog

mp_timer:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    in16 r1, (r8+R_BMCR)
    and r1, r1, 0x2000         ; speed bit doubles as link-present
    st32 [r9+CTX_LINK], r1
    movi r0, ST_SUCCESS
    ret 4

; --------------------------------------------------------------------------
; reset(ctx) / halt(ctx)

mp_reset:
    ld32 r9, [sp+4]
    push r9
    call rtl_hw_setup
    movi r0, ST_SUCCESS
    ret 4

mp_halt:
    ld32 r9, [sp+4]
    ld32 r8, [r9+CTX_IO]
    movi r1, 0
    out16 (r8+R_IMR), r1
    out8 (r8+R_CR), r1
    movi r0, ST_SUCCESS
    ret 4

; ==========================================================================
.data
miniport:
    .space 0x1C
