"""RevNIC core: the paper's primary contribution.

Pulls the substrates together: loads a closed-source binary driver into the
VM, creates the illusion of real hardware with a *shell symbolic device*,
exercises every discovered entry point with selective symbolic execution
under coverage-maximizing heuristics, and wiretaps all executed IR, memory
accesses and hardware I/O into activity traces for the synthesizer.
"""

from repro.revnic.shell_device import ShellDevice
from repro.revnic.trace import BlockRecord, ImportRecord, Trace, TraceSegment
from repro.revnic.wiretap import Wiretap
from repro.revnic.heuristics import (
    BfsStrategy,
    CoverageDrivenStrategy,
    DfsStrategy,
    StateScheduler,
    make_strategy,
)
from repro.revnic.engine import RevNic, RevNicConfig, RevNicResult

__all__ = [
    "ShellDevice",
    "BlockRecord",
    "ImportRecord",
    "Trace",
    "TraceSegment",
    "Wiretap",
    "BfsStrategy",
    "CoverageDrivenStrategy",
    "DfsStrategy",
    "StateScheduler",
    "make_strategy",
    "RevNic",
    "RevNicConfig",
    "RevNicResult",
]
