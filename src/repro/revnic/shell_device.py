"""The shell symbolic device (paper section 3.4).

"RevNIC uses a 'shell' virtual device in the hypervisor to create the
illusion that the actual device is present ... The shell device consists of
a PCI configuration space descriptor, which contains crucial information
for loading the corresponding driver: the vendor and product identifier of
the device whose driver is being reverse engineered, the I/O memory ranges,
and the interrupt line."

The shell device has *no behaviour*: every read from its registers (or from
DMA-registered memory) is answered with a fresh symbolic value by the
:class:`~repro.symex.executor.HardwarePolicy`; writes are recorded and
discarded.  The developer obtains the PCI parameters from the device
manager and passes them to RevNIC -- here, via a :class:`PciDescriptor`.
"""

from repro.hw.base import PciDescriptor


class ShellDevice:
    """A register-less stand-in carrying only PCI identity.

    It exists so the guest-OS plumbing (I/O-port range registration, MMIO
    mapping, interrupt line queries) can answer the driver exactly as it
    would with real hardware present.
    """

    def __init__(self, pci):
        if not isinstance(pci, PciDescriptor):
            raise TypeError("shell device needs a PciDescriptor")
        self.PCI = pci
        #: DMA physical regions registered by the driver through the OS API
        #: (tracked so reads from them can be made symbolic).
        self.dma_regions = []

    def register_dma_region(self, physical, size):
        """Record a DMA region reported by the DMA-allocation API."""
        self.dma_regions.append((physical, size))

    def is_dma_address(self, address):
        """True when ``address`` falls in any registered DMA region."""
        return any(base <= address < base + size
                   for base, size in self.dma_regions)

    # The shell device must never be accessed concretely: RevNIC executes
    # all driver code symbolically, so these are defensive tripwires.

    def io_read(self, offset, width):  # pragma: no cover - tripwire
        raise RuntimeError("shell device accessed concretely")

    def io_write(self, offset, width, value):  # pragma: no cover
        raise RuntimeError("shell device accessed concretely")

    def mmio_read(self, offset, width):  # pragma: no cover
        raise RuntimeError("shell device accessed concretely")

    def mmio_write(self, offset, width, value):  # pragma: no cover
        raise RuntimeError("shell device accessed concretely")
