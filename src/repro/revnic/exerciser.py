"""The exercise script: which entry points to drive, with which mix of
concrete and symbolic arguments.

Mirrors the paper's user-mode script (section 3.2): "first loads the driver
so as to exercise its initialization routine, then invokes various standard
IOCTLs, performs a send, exercises the reception, and ends with a driver
unload. Interrupt handlers are triggered by the VM."  Parameter
symbolicness follows :data:`ENTRY_POINT_SIGNATURES`: user buffers and
integer parameters become symbolic, pointers stay concrete.
"""

from dataclasses import dataclass, field

from repro.symex import expr as E


@dataclass
class Phase:
    """One entry-point invocation in the exercise script."""

    entry: str                     # entry-point name ('driver_entry' first)
    #: argument specs after the implicit adapter-context argument: each is
    #: ('const', value) | ('sym', label) | ('buffer', size, symbolic_bytes)
    args: list = field(default_factory=list)
    #: inject an interrupt (explore the ISR) after this phase completes
    interrupt_after: bool = False
    #: exploration budget override (None = engine default)
    max_blocks: int = None

    def describe(self):
        return "%s(%s)%s" % (self.entry,
                             ", ".join(a[0] for a in self.args),
                             " +irq" if self.interrupt_after else "")


def default_script():
    """The standard NIC exercise script.

    Symbolic OIDs make the set/query dispatch tables fully explored (the
    paper's symbolic-IOCTL-number case); symbolic packet bytes and length
    exercise all send paths; the ISR phases run with symbolic hardware, so
    every interrupt cause is explored.
    """
    return [
        Phase("driver_entry"),
        Phase("initialize", interrupt_after=True),
        Phase("query_information",
              args=[("sym", "q_oid"), ("buffer", 64, 0), ("sym", "q_len")]),
        Phase("set_information",
              args=[("sym", "s_oid"), ("buffer", 64, 32), ("sym", "s_len")]),
        # Second pass with a fully concrete buffer: data-dependent loops
        # (e.g. the multicast CRC hash) run to completion instead of
        # exploding over symbolic bytes -- the paper's "mix concrete and
        # symbolic data within the same buffer" speed-up (section 3.2).
        Phase("set_information",
              args=[("sym", "s2_oid"), ("buffer", 64, 0),
                    ("sym", "s2_len")]),
        Phase("send",
              args=[("buffer", 1536, 48), ("sym", "tx_len")],
              interrupt_after=True),
        Phase("isr"),                       # receive path: symbolic status
        Phase("timer"),
        Phase("reset", interrupt_after=True),
        Phase("halt"),
    ]


def quick_script():
    """A reduced script for fast smoke runs and unit tests."""
    return [
        Phase("driver_entry"),
        Phase("initialize", interrupt_after=True),
        Phase("send", args=[("buffer", 256, 16), ("sym", "tx_len")],
              interrupt_after=True),
        Phase("halt"),
    ]


#: Named exercise scripts selectable through ``RevNicConfig.script`` (and
#: therefore through the pipeline orchestrator's ``script=`` option).
SCRIPTS = {
    "default": default_script,
    "quick": quick_script,
}


def make_script(name):
    """Instantiate a named exercise script ('default' or 'quick')."""
    try:
        return SCRIPTS[name]()
    except KeyError:
        raise ValueError("unknown exercise script %r" % (name,)) from None


def make_symbolic_buffer(state, address, size, symbolic_bytes, label):
    """Fill ``size`` bytes at ``address``: the first ``symbolic_bytes`` are
    fresh symbols, the rest concrete filler (the paper cites mixing concrete
    and symbolic data within one buffer to speed up exploration)."""
    for i in range(size):
        if i < symbolic_bytes:
            state.memory.write_byte(address + i,
                                    E.bv_sym("%s_%d" % (label, i), 8))
        else:
            state.memory.write_byte(address + i, (i * 7 + 3) & 0xFF)
