"""The symbolic/concrete OS boundary.

When symbolically-executed driver code calls an OS API (a ``CALL`` into the
import-thunk window), execution crosses into the concrete domain: argument
values are concretized (adding the equality constraints to the path), the
API's effect is applied to the *state* (not the shared machine), and
execution resumes at the return address -- the mechanism of paper section
3.4 ("RevNIC automatically concretizes the symbolic values whenever they
are read by the OS").
"""

from repro.errors import SymexError
from repro.guestos.structures import MINIPORT_FIELDS, NdisStatus
from repro.isa.registers import REG_SP
from repro.layout import RETURN_TO_OS
from repro.symex import expr as E
from repro.symex.state import PathStatus


class SymOsBridge:
    """Applies OS API semantics to symbolic states."""

    def __init__(self, solver, shell, wiretap=None, import_names=None,
                 on_entry_points=None, registry=None, skip_functions=None):
        self.solver = solver
        self.shell = shell
        self.wiretap = wiretap
        self.import_names = import_names or {}
        #: callback(name -> address dict) invoked on registration calls
        self.on_entry_points = on_entry_points
        self.registry = registry or {}
        #: OS functions configured away (paper: "OS functions like log
        #: writes can be configured away"): name -> forced return value,
        #: or name -> (return value, argument count) for APIs the bridge
        #: has no handler for.  Skipped calls pop their stack arguments
        #: and return immediately without applying any API semantics.
        self.skip_functions = skip_functions or {}
        self.calls_handled = 0
        self.calls_skipped = 0
        self._dispatch = {
            "NdisMRegisterMiniport": (self._register_miniport, 1),
            "NdisMSetAttributes": (self._success, 1),
            "NdisAllocateMemory": (self._allocate, 1),
            "NdisFreeMemory": (self._success, 2),
            "NdisMAllocateSharedMemory": (self._allocate_shared, 2),
            "NdisMFreeSharedMemory": (self._success, 2),
            "NdisMRegisterIoPortRange": (self._io_port_range, 1),
            "NdisMMapIoSpace": (self._map_io_space, 2),
            "NdisMRegisterInterrupt": (self._success, 1),
            "NdisInitializeTimer": (self._initialize_timer, 2),
            "NdisSetTimer": (self._success, 2),
            "NdisMCancelTimer": (self._success, 1),
            "NdisWriteErrorLogEntry": (self._error_log, 1),
            "NdisStallExecution": (self._success, 1),
            "NdisMIndicateReceivePacket": (self._indicate, 2),
            "NdisMSendComplete": (self._send_complete, 1),
            "NdisReadConfiguration": (self._read_configuration, 1),
            "NdisGetPhysicalAddress": (self._identity, 1),
        }

    # ------------------------------------------------------------------

    def handle(self, state, slot):
        """Process an import call on ``state``.

        Returns the list of states to requeue (``[state]`` when the path
        continues, ``[]`` when it completed or died).
        """
        name = self.import_names.get(slot)
        skipped = name is not None and name in self.skip_functions
        if skipped:
            spec = self.skip_functions[name]
            if isinstance(spec, tuple):
                forced_return, nargs = spec
            else:
                entry = self._dispatch.get(name)
                if entry is None:
                    # A bare return value gives no way to know how many
                    # stack arguments to pop; guessing would silently
                    # misalign the stack.  Force the explicit form.
                    raise SymexError(
                        "skip_functions[%r]: no bridge handler to take "
                        "the argument count from; use (return value, "
                        "nargs)" % name)
                forced_return = spec
                nargs = entry[1]
            handler = None
        elif name is None or name not in self._dispatch:
            state.status = PathStatus.ERROR
            return []
        else:
            handler, nargs = self._dispatch[name]
        self.calls_handled += 1

        sp = self._concrete(state, state.regs[REG_SP])
        if sp is None:
            return []
        args = []
        for i in range(nargs):
            raw = state.memory.read(sp + 4 + 4 * i, 4)
            value = self._concrete(state, raw)
            if value is None:
                return []
            args.append(value)

        if self.wiretap is not None:
            self.wiretap.on_import(state, name, tuple(args), state.pc)

        if skipped:
            self.calls_skipped += 1
            result = forced_return
        else:
            result = handler(state, *args)
        state.regs[0] = result & 0xFFFFFFFF

        return_addr = self._concrete(state, state.memory.read(sp, 4))
        if return_addr is None:
            return []
        state.regs[REG_SP] = sp + 4 + 4 * nargs
        if return_addr == RETURN_TO_OS:
            state.status = PathStatus.COMPLETED
            state.return_value = state.regs[0]
            return []
        state.pc = return_addr
        return [state]

    def _concrete(self, state, value):
        """Concretize ``value`` at the OS boundary, constraining the path."""
        if isinstance(value, int):
            return value
        concrete, model = self.solver.concretize_context(
            state.solver_ctx, value, prefer=state.model_hint)
        if concrete is None:
            state.status = PathStatus.ERROR
            return None
        state.add_constraint(E.bv_cmp("eq", value, concrete), model=model)
        state.model_hint.update(model)
        return concrete

    # ------------------------------------------------------------------
    # API semantics (applied to the state, not the shared machine)

    def _success(self, state, *args):
        return NdisStatus.SUCCESS

    def _identity(self, state, value):
        return value

    def _register_miniport(self, state, characteristics_ptr):
        entries = {}
        for name, offset in MINIPORT_FIELDS.items():
            pointer = state.memory.read(characteristics_ptr + offset, 4)
            pointer = self._concrete(state, pointer)
            if pointer:
                entries[name] = pointer
        if self.on_entry_points is not None:
            self.on_entry_points(entries)
        return NdisStatus.SUCCESS

    def _allocate(self, state, size):
        address = (state.os.heap_next + 15) & ~15
        state.os.heap_next = address + max(size, 4)
        return address

    def _allocate_shared(self, state, size, physical_out):
        address = (state.os.heap_next + 63) & ~63
        state.os.heap_next = address + max(size, 4)
        state.memory.write(physical_out, 4, address)
        state.os.dma_regions.append((address, size))
        if self.shell is not None:
            self.shell.register_dma_region(address, size)
        return address

    def _io_port_range(self, state, size):
        return self.shell.PCI.io_base if self.shell is not None else 0

    def _map_io_space(self, state, physical, size):
        return self.shell.PCI.mmio_base if self.shell is not None else 0

    def _initialize_timer(self, state, timer_struct, handler):
        state.os.timers[timer_struct] = handler
        if self.on_entry_points is not None:
            self.on_entry_points({"timer": handler})
        return NdisStatus.SUCCESS

    def _error_log(self, state, code):
        state.os.error_logs += 1
        return NdisStatus.SUCCESS

    def _indicate(self, state, buffer, length):
        state.os.indicated += 1
        return NdisStatus.SUCCESS

    def _send_complete(self, state, status):
        state.os.send_completions += 1
        return NdisStatus.SUCCESS

    def _read_configuration(self, state, key):
        return self.registry.get(key, 0)
