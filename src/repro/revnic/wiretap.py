"""The wiretap: records driver activity during symbolic exploration.

Paper section 3.3: the wiretap saves (1) executed instructions in the
intermediate representation, (2) whether accesses touch device-mapped or
regular memory, with pointer values and data, and (3) block types and the
register file at block entry/exit -- everything the synthesizer needs to
rebuild control flow and data flow.
"""

import itertools

from repro.ir import nodes as N
from repro.revnic.trace import BlockRecord, ImportRecord, _sanitize


def _terminator_kind(term_info):
    if term_info is None:
        return "fallthrough"
    return {"jump": "jump", "condjump": "condjump", "call": "call",
            "ret": "ret", "halt": "halt"}[term_info[0]]


def _static_target(block):
    term = block.terminator
    if isinstance(term, N.IrCall) and not term.indirect:
        return term.target
    if isinstance(term, N.IrJump) and not term.indirect:
        return term.target
    return None


class Wiretap:
    """Per-run trace recorder; states carry their own record lists so COW
    forking keeps path prefixes shared."""

    def __init__(self, text_base=0, text_end=0, coverage=None,
                 seq_start=0):
        #: ``seq_start`` namespaces the record sequence: sharded
        #: exploration (repro.symex.frontier) gives each sub-tree a
        #: disjoint sequence base so merged records carry the same seq
        #: numbers whether the sub-tree ran in-process or in a worker.
        self._seq = itertools.count(seq_start)
        self.text_base = text_base
        self.text_end = text_end
        self.blocks_recorded = 0
        self.imports_recorded = 0
        self.forks_observed = 0
        #: optional CoverageTracker fed with every recorded block
        self.coverage = coverage

    def _in_driver(self, pc):
        if self.text_end == 0:
            return True
        return self.text_base <= pc < self.text_end

    def on_block(self, state, block, regs_before, regs_after, accesses,
                 term_info):
        """Record one executed translation block.

        RevNIC "stops recording when execution leaves the driver" -- blocks
        outside the driver's text are not recorded.
        """
        if not self._in_driver(block.pc):
            return
        if self.coverage is not None:
            self.coverage.mark_block(block)
        record = BlockRecord(
            seq=next(self._seq),
            pc=block.pc,
            block=block,
            regs_before=[_sanitize(r) for r in regs_before],
            regs_after=[_sanitize(r) for r in regs_after],
            accesses=list(accesses),
            terminator=_terminator_kind(term_info),
            target=_static_target(block),
        )
        state.trace_records.append(record)
        self.blocks_recorded += 1

    def on_import(self, state, name, args, caller_pc):
        """Record an OS API call made by the driver."""
        record = ImportRecord(seq=next(self._seq), name=name,
                              args=tuple(args), caller_pc=caller_pc)
        state.trace_records.append(record)
        self.imports_recorded += 1

    def on_fork(self, parent, child):
        self.forks_observed += 1
