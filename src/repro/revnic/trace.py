"""Activity-trace containers produced by the wiretap.

A trace is organized as *segments* (one per exercised entry point, in
script order), each holding the set of explored *paths*; a path is an
ordered list of :class:`BlockRecord` / :class:`ImportRecord` entries.  This
is the input format of the synthesizer: "RevNIC exercises the driver and
outputs a trace consisting of translated LLVM blocks, along with their
sequencing and all memory and I/O information" (section 4).
"""

from dataclasses import dataclass, field

from repro.symex.expr import Expr


def _sanitize(value):
    """Registers in trace records: concrete ints stay, symbolic values are
    recorded as an opaque marker (the synthesizer only needs concrete
    values for control-flow reconstruction)."""
    if isinstance(value, Expr):
        return None
    return value


@dataclass
class BlockRecord:
    """One executed translation block on one path."""

    seq: int                   # global sequence number (wiretap order)
    pc: int
    block: object              # the TranslationBlock (IR)
    regs_before: list
    regs_after: list
    accesses: list             # list of MemAccess
    terminator: str            # 'jump' | 'condjump' | 'call' | 'ret' | 'halt'
    #: resolved guest target for calls/jumps (None when unresolved)
    target: object = None

    @property
    def device_accesses(self):
        return [a for a in self.accesses if a.kind in ("mmio", "port", "dma")]


@dataclass
class ImportRecord:
    """One OS API call crossing the symbolic/concrete boundary."""

    seq: int
    name: str
    args: tuple
    caller_pc: int


@dataclass
class PathTrace:
    """One explored path: its records plus the path outcome."""

    path_id: int
    records: list
    status: str
    return_value: object = None


@dataclass
class TraceSegment:
    """All paths explored while exercising one entry point."""

    entry_name: str
    entry_address: int
    paths: list = field(default_factory=list)

    @property
    def completed_paths(self):
        return [p for p in self.paths if p.status == "completed"]


@dataclass
class Trace:
    """The complete wiretap output for one RevNIC run."""

    driver_name: str
    segments: list = field(default_factory=list)
    #: entry point name -> guest virtual address (from registration calls)
    entry_points: dict = field(default_factory=dict)
    #: loaded-image info needed to map addresses back to text offsets
    text_base: int = 0
    text_size: int = 0

    def all_records(self):
        """Iterate every record of every path of every segment."""
        for segment in self.segments:
            for path in segment.paths:
                for record in path.records:
                    yield segment, path, record

    def executed_block_pcs(self):
        """Set of translation-block start addresses seen in the trace."""
        return {r.pc for _s, _p, r in self.all_records()
                if isinstance(r, BlockRecord)}

    def executed_instruction_addrs(self):
        """Set of guest instruction addresses covered by the trace."""
        out = set()
        for _segment, _path, record in self.all_records():
            if isinstance(record, BlockRecord):
                out.update(record.block.instr_addrs)
        return out
