"""Exploration heuristics (paper section 3.2).

The scheduler owns the worklist of RUNNING states and decides which
``<path, block>`` tuple executes next.  Strategies are pluggable ("RevNIC
allows these heuristics to be modularly replaced"):

* :class:`CoverageDrivenStrategy` -- the paper's default: a global counter
  per basic block; the next state is the one about to execute the block
  with the lowest count.  Naturally de-prioritizes re-executed loops.
* :class:`DfsStrategy` / :class:`BfsStrategy` -- the baselines the paper
  compares against (DFS gets stuck in polling loops, BFS takes long to
  finish complex entry points); used by the ablation benchmarks.

The scheduler also implements the polling-loop killer: states that keep
re-executing the same block beyond a threshold are killed whenever at
least one other state exists to continue from.
"""

from repro.symex.state import PathStatus


class CoverageDrivenStrategy:
    """Pick the state whose next block has the lowest global execution
    count (the paper's first heuristic)."""

    name = "coverage"

    def __init__(self):
        self.block_counts = {}

    def on_executed(self, pc):
        self.block_counts[pc] = self.block_counts.get(pc, 0) + 1

    def pick(self, states):
        best_index = 0
        best_count = None
        for index, state in enumerate(states):
            count = self.block_counts.get(state.pc, 0)
            # Ties break on the deterministic state id, never on worklist
            # position: insertion order differs between a single global
            # queue and per-sub-tree queues, and sharded exploration
            # (repro.symex.frontier) depends on the pick being a pure
            # function of the state *set*.
            if best_count is None or count < best_count \
                    or (count == best_count
                        and state.id < states[best_index].id):
                best_count = count
                best_index = index
        return best_index


class DfsStrategy:
    """Depth-first: always continue the most recently touched state."""

    name = "dfs"

    def on_executed(self, pc):
        pass

    def pick(self, states):
        return len(states) - 1


class BfsStrategy:
    """Breadth-first: rotate through states in FIFO order."""

    name = "bfs"

    def on_executed(self, pc):
        pass

    def pick(self, states):
        return 0


def make_strategy(name):
    """Instantiate a strategy by name ('coverage', 'dfs', 'bfs')."""
    strategies = {"coverage": CoverageDrivenStrategy, "dfs": DfsStrategy,
                  "bfs": BfsStrategy}
    try:
        return strategies[name]()
    except KeyError:
        raise ValueError("unknown strategy %r" % name) from None


class StateScheduler:
    """Worklist of running states + the loop-killing policy."""

    def __init__(self, strategy=None, loop_kill_threshold=12,
                 max_states=256):
        self.strategy = strategy or CoverageDrivenStrategy()
        self.loop_kill_threshold = loop_kill_threshold
        self.max_states = max_states
        self.states = []
        self.killed_loops = 0
        self.killed_overflow = 0

    def __len__(self):
        return len(self.states)

    def add(self, state):
        """Add a RUNNING state, applying the loop killer and the state-count
        cap (paper: "RevNIC keeps the paths that step out of the polling
        loops and kills those that go on to the next iteration")."""
        if state.status != PathStatus.RUNNING:
            return
        # Kill only *polling-loop* paths: states that keep re-entering a
        # block through a symbolic back edge.  Concrete-bounded loops
        # (copies, checksums) are never culled -- they terminate on their
        # own and their completion records the post-loop blocks.
        local_count = state.block_counts.get(state.pc, 0)
        if state.pc in state.loop_suspects \
                and local_count >= self.loop_kill_threshold:
            state.status = PathStatus.KILLED
            self.killed_loops += 1
            return
        if len(self.states) >= self.max_states:
            # Memory-pressure valve: drop the deepest state.
            victim_index = max(range(len(self.states)),
                               key=lambda i: self.states[i].depth)
            victim = self.states.pop(victim_index)
            victim.status = PathStatus.KILLED
            self.killed_overflow += 1
        self.states.append(state)

    def next_state(self):
        """Pop the next state to execute, per the strategy."""
        if not self.states:
            return None
        index = self.strategy.pick(self.states)
        state = self.states.pop(index)
        self.strategy.on_executed(state.pc)
        return state

    def kill_all(self, keep=None):
        """Kill every queued state except ``keep`` (used by the entry-point
        completion cutoff)."""
        for state in self.states:
            if state is not keep:
                state.status = PathStatus.KILLED
        self.states = [s for s in self.states if s is keep]
