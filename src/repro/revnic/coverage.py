"""Basic-block accounting for coverage measurement (Figure 8).

Ground-truth basic blocks are computed by statically decoding the driver's
text segment (possible here because R32 is fixed-width; the paper's x86
cannot be decoded statically, which is one reason RevNIC is dynamic --
coverage accounting is the only consumer of this static pass and it is not
part of the reverse-engineering pipeline itself).
"""

from dataclasses import dataclass, field

from repro.isa.encoding import INSTR_SIZE, decode
from repro.isa.opcodes import BRANCH_OPS, Op, TERMINATOR_OPS


def static_basic_blocks(image, text_base):
    """Return the sorted list of basic-block leader addresses."""
    leaders = {text_base + image.entry}
    for export in image.exports:
        leaders.add(text_base + export.offset)
    text_relocs = {r.site for r in image.relocs
                   if r.kind.name == "TEXT"}
    for offset in range(0, len(image.text), INSTR_SIZE):
        instr = decode(image.text, offset)
        address = text_base + offset
        has_text_reloc = (offset + 4) in text_relocs
        if instr.op in BRANCH_OPS:
            if has_text_reloc:
                leaders.add(text_base + instr.imm)
            leaders.add(address + INSTR_SIZE)
        elif instr.op == Op.JMP:
            if has_text_reloc:
                leaders.add(text_base + instr.imm)
        elif instr.op == Op.CALL:
            if has_text_reloc:
                leaders.add(text_base + instr.imm)
            leaders.add(address + INSTR_SIZE)
        elif instr.op == Op.MOVI and has_text_reloc:
            leaders.add(text_base + instr.imm)
        elif instr.op in TERMINATOR_OPS:
            leaders.add(address + INSTR_SIZE)
    limit = text_base + len(image.text)
    return sorted(l for l in leaders if text_base <= l < limit)


@dataclass
class CoverageTracker:
    """Tracks executed instruction addresses against static blocks."""

    leaders: list
    executed: set = field(default_factory=set)
    #: samples of (blocks_executed, wall_seconds, coverage_fraction)
    timeline: list = field(default_factory=list)

    def mark_block(self, block):
        self.executed.update(block.instr_addrs)

    def covered_leaders(self):
        return sum(1 for leader in self.leaders if leader in self.executed)

    @property
    def fraction(self):
        if not self.leaders:
            return 0.0
        return self.covered_leaders() / len(self.leaders)

    def sample(self, blocks_executed, wall_seconds):
        self.timeline.append((blocks_executed, wall_seconds, self.fraction))
