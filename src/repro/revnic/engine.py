"""The top-level RevNIC engine.

Orchestrates one reverse-engineering run: load the binary driver next to a
shell symbolic device, execute the exercise script phase by phase under
selective symbolic execution, and collect the wiretap trace, coverage
timeline and statistics.  The output feeds :mod:`repro.synth`.
"""

import time
from dataclasses import dataclass, field

from repro.dbt import CodeWindow, Translator
from repro.errors import SymexError
from repro.guestos.loader import load_image
from repro.guestos.structures import ADAPTER_CONTEXT_SIZE, NdisStatus
from repro.isa.registers import REG_SP
from repro.layout import HEAP_BASE, RETURN_TO_OS, STACK_TOP
from repro.revnic.coverage import CoverageTracker, static_basic_blocks
from repro.revnic.exerciser import make_script, make_symbolic_buffer
from repro.revnic.heuristics import StateScheduler, make_strategy
from repro.revnic.osbridge import SymOsBridge
from repro.revnic.shell_device import ShellDevice
from repro.revnic.trace import PathTrace, Trace, TraceSegment
from repro.revnic.wiretap import Wiretap
from repro.symex import expr as E
from repro.symex.executor import HardwarePolicy, SymExecutor
from repro.symex.memory import SymMemory
from repro.symex.state import PathStatus, SymState
from repro.symex.solver import Solver
from repro.vm.machine import Machine


@dataclass
class RevNicConfig:
    """Run parameters (the paper's command line + configuration file)."""

    driver_name: str = "driver"
    #: PCI identity of the device whose driver is reverse engineered
    #: (vendor/product id, I/O ranges, IRQ -- from the device manager).
    pci: object = None
    #: exploration strategy: 'coverage' (paper default), 'dfs', 'bfs'
    strategy: str = "coverage"
    #: per-phase translation-block budget
    max_blocks_per_phase: int = 6000
    #: entry-point completion cutoff (paper: after an entry point completes
    #: successfully a given number of times, discard all other paths)
    completion_cutoff: int = 4
    #: the cutoff only fires once exploration has gone this many blocks
    #: without discovering new code (paper section 3.2: "executed
    #: symbolically until no more new code blocks are discovered within
    #: some predefined amount of time")
    stale_window: int = 300
    #: polling-loop kill threshold (local re-executions of one block)
    loop_kill_threshold: int = 12
    max_states: int = 256
    #: functions to skip (paper: OS functions like log writes can be
    #: configured away; name -> forced return value, or name ->
    #: (return value, argument count) for APIs without a bridge handler).
    #: Honored by :class:`~repro.revnic.osbridge.SymOsBridge`.
    skip_functions: dict = field(default_factory=dict)
    #: coverage sample interval in executed blocks
    sample_every: int = 25
    #: exercise script: 'default' (the full NIC script) or 'quick' (the
    #: reduced smoke script).  An explicit ``script=`` argument to
    #: :class:`RevNic` overrides this.
    script: str = "default"


@dataclass
class RevNicResult:
    """Everything a RevNIC run produced.

    Self-contained by design: ``import_names`` and the captured ``code``
    window mean downstream synthesis never needs the live engine, so a
    result (and the artifact built from it) can cross a process boundary.
    """

    trace: Trace
    coverage: CoverageTracker
    entry_points: dict
    stats: dict
    dma_regions: list
    #: import slot -> OS API name (from the loaded image)
    import_names: dict = field(default_factory=dict)
    #: relocated text snapshot; the synthesizer's DBT fallback translates
    #: missing blocks from it without a live machine
    code: object = None

    @property
    def coverage_fraction(self):
        return self.coverage.fraction


class RevNic:
    """One reverse-engineering run over one binary driver."""

    def __init__(self, image, config=None, script=None, hardware=None):
        """``hardware`` optionally replaces the default
        :class:`HardwarePolicy` (e.g. ``HardwarePolicy(retain_log=True)``
        to keep the full device-access log for inspection)."""
        self.image = image
        self.config = config or RevNicConfig()
        self.script = script or make_script(self.config.script)
        self.machine = Machine()
        self.loaded = load_image(self.machine, image)
        self.shell = ShellDevice(self.config.pci) if self.config.pci \
            else None
        self.solver = Solver()
        self.translator = Translator(
            lambda addr, size: self.machine.memory.read_bytes(addr, size))
        self.wiretap = Wiretap(self.loaded.text_base, self.loaded.text_end)
        self.entry_points = {}
        self.bridge = SymOsBridge(
            self.solver, self.shell, wiretap=self.wiretap,
            import_names=self.loaded.import_names,
            on_entry_points=self.entry_points.update,
            skip_functions=self.config.skip_functions)
        self.hardware = hardware or HardwarePolicy()
        self.executor = SymExecutor(
            self.translator, self.solver, hardware=self.hardware,
            tracer=self.wiretap,
            is_dma_address=(self.shell.is_dma_address if self.shell
                            else None))
        self.coverage = CoverageTracker(
            static_basic_blocks(image, self.loaded.text_base))
        self.wiretap.coverage = self.coverage
        self.context_address = HEAP_BASE
        self._blocks_total = 0
        self._start_time = None
        self._phase_log = []

    # ------------------------------------------------------------------

    def run(self):
        """Execute the full exercise script; returns a RevNicResult."""
        self._start_time = time.monotonic()
        eval_before = E.eval_counters()
        trace = Trace(driver_name=self.config.driver_name,
                      text_base=self.loaded.text_base,
                      text_size=len(self.image.text))
        continuation = self._initial_state()

        for phase in self.script:
            segment, continuation = self._run_phase(phase, continuation)
            if segment is not None:
                trace.segments.append(segment)
            if phase.interrupt_after and "isr" in self.entry_points:
                from repro.revnic.exerciser import Phase
                segment, continuation = self._run_phase(
                    Phase("isr"), continuation)
                if segment is not None:
                    trace.segments.append(segment)

        trace.entry_points = dict(self.entry_points)
        eval_after = E.eval_counters()
        stats = {
            "blocks_executed": self._blocks_total,
            "exec_fast_blocks": self.executor.fast_blocks,
            "forks": self.executor.forks,
            "solver_queries": self.solver.queries,
            "solver_comp_solves": self.solver.comp_solves,
            "solver_cache_hits": self.solver.cache_hits,
            "solver_fast_path_hits": self.solver.fast_path_hits,
            "eval_program_runs": (eval_after["program_runs"]
                                  - eval_before["program_runs"]),
            "eval_node_visits": (eval_after["node_visits"]
                                 - eval_before["node_visits"]),
            "blocks_recorded": self.wiretap.blocks_recorded,
            "imports_recorded": self.wiretap.imports_recorded,
            "hw_reads": self.hardware.reads_total,
            "hw_writes": self.hardware.writes_total,
            "hw_read_counts": dict(self.hardware.read_counts),
            "hw_write_counts": dict(self.hardware.write_counts),
            "os_calls_handled": self.bridge.calls_handled,
            "os_calls_skipped": self.bridge.calls_skipped,
            "wall_seconds": time.monotonic() - self._start_time,
            "phases": list(self._phase_log),
        }
        dma = list(self.shell.dma_regions) if self.shell else []
        code = CodeWindow(self.loaded.text_base,
                          self.machine.memory.read_bytes(
                              self.loaded.text_base, len(self.image.text)))
        return RevNicResult(trace=trace, coverage=self.coverage,
                            entry_points=dict(self.entry_points),
                            stats=stats, dma_regions=dma,
                            import_names=dict(self.loaded.import_names),
                            code=code)

    # ------------------------------------------------------------------

    def _initial_state(self):
        import itertools

        memory = SymMemory(self.machine.memory.read)
        # Fresh id counter per run: every state descends from this root,
        # so path ids (serialized into artifacts) restart at zero for
        # each run regardless of process history.
        state = SymState(pc=0, regs=[0] * 16, memory=memory,
                         id_source=itertools.count())
        return state

    def _entry_address(self, name):
        if name == "driver_entry":
            return self.loaded.entry_address
        return self.entry_points.get(name)

    def _prepare_root(self, phase, continuation):
        """Build the phase's root state from the previous continuation."""
        address = self._entry_address(phase.entry)
        if address is None:
            return None
        root = continuation.fork()
        root.parent = None          # cut the trace chain between segments
        root.trace_chain = []
        root.trace_records = []
        root.status = PathStatus.RUNNING
        root.block_counts = {}

        args = []
        if phase.entry != "driver_entry":
            args.append(self.context_address)
        scratch = root.os.heap_next
        for index, spec in enumerate(phase.args):
            kind = spec[0]
            if kind == "const":
                args.append(spec[1])
            elif kind == "sym":
                args.append(E.bv_sym("%s_%s" % (phase.entry, spec[1])))
            elif kind == "buffer":
                size, symbolic_bytes = spec[1], spec[2]
                address_buf = (scratch + 63) & ~63
                scratch = address_buf + size
                make_symbolic_buffer(root, address_buf, size, symbolic_bytes,
                                     "%s_buf%d" % (phase.entry, index))
                args.append(address_buf)
            else:
                raise SymexError("bad arg spec %r" % (spec,))
        root.os.heap_next = scratch

        sp = STACK_TOP
        for value in reversed(args):
            sp -= 4
            root.memory.write(sp, 4, value)
        sp -= 4
        root.memory.write(sp, 4, RETURN_TO_OS)
        root.regs = [0] * 16
        root.regs[REG_SP] = sp
        root.pc = address
        return root

    def _run_phase(self, phase, continuation):
        root = self._prepare_root(phase, continuation)
        if root is None:
            return None, continuation
        segment = TraceSegment(entry_name=phase.entry,
                               entry_address=root.pc)
        scheduler = StateScheduler(
            strategy=make_strategy(self.config.strategy),
            loop_kill_threshold=self.config.loop_kill_threshold,
            max_states=self.config.max_states)
        scheduler.add(root)
        terminal = []
        completed = []
        budget = phase.max_blocks or self.config.max_blocks_per_phase
        blocks = 0
        covered_before = len(self.coverage.executed)
        blocks_at_last_discovery = 0

        while blocks < budget:
            state = scheduler.next_state()
            if state is None:
                break
            successors, events = self.executor.step(state)
            blocks += 1
            self._blocks_total += 1
            if self._blocks_total % self.config.sample_every == 0:
                self.coverage.sample(self._blocks_total,
                                     time.monotonic() - self._start_time)
            for successor in successors:
                scheduler.add(successor)
                if successor.status == PathStatus.KILLED:
                    terminal.append(successor)
            for event in events:
                if event.kind == "import-call":
                    followups = self.bridge.handle(event.state, event.slot)
                    for follow in followups:
                        scheduler.add(follow)
                        if follow.status == PathStatus.KILLED:
                            terminal.append(follow)
                    if event.state.status == PathStatus.COMPLETED:
                        completed.append(event.state)
                        terminal.append(event.state)
                    elif event.state.status in (PathStatus.ERROR,
                                                PathStatus.HALTED):
                        terminal.append(event.state)
                elif event.kind == "completed":
                    completed.append(event.state)
                    terminal.append(event.state)
                else:
                    terminal.append(event.state)
            covered_now = len(self.coverage.executed)
            if covered_now != covered_before:
                covered_before = covered_now
                blocks_at_last_discovery = blocks
            successes = [s for s in completed
                         if self._is_success(s.return_value)]
            stale = blocks - blocks_at_last_discovery \
                >= self.config.stale_window
            if len(successes) >= self.config.completion_cutoff and stale:
                for killed in scheduler.states:
                    terminal.append(killed)
                scheduler.kill_all()
                break

        # Collect remaining queued states as killed paths (their traces
        # still contribute covered blocks).
        for state in scheduler.states:
            state.status = PathStatus.KILLED
            terminal.append(state)
        scheduler.states = []

        for state in terminal:
            records = state.path_trace()
            if records:
                segment.paths.append(PathTrace(
                    path_id=state.id, records=records,
                    status=state.status.value,
                    return_value=state.return_value))

        self.coverage.sample(self._blocks_total,
                             time.monotonic() - self._start_time)
        self._phase_log.append({
            "entry": phase.entry, "blocks": blocks,
            "paths": len(segment.paths),
            "completed": len(completed),
            "coverage": self.coverage.fraction,
        })
        next_continuation = self._pick_continuation(completed, terminal,
                                                    continuation)
        return segment, next_continuation

    @staticmethod
    def _is_success(return_value):
        if return_value is None:
            return False
        if not isinstance(return_value, int):
            return False
        return return_value == NdisStatus.SUCCESS

    def _pick_continuation(self, completed, terminal, previous):
        """Choose the state exploration continues from: a successful
        completion if any (paper: "discards all paths except one successful
        one"), else any completion, else the previous continuation."""
        for state in completed:
            if self._is_success(state.return_value):
                return state
        if completed:
            return completed[0]
        return previous
