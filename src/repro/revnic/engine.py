"""The top-level RevNIC engine.

Orchestrates one reverse-engineering run: load the binary driver next to a
shell symbolic device, execute the exercise script phase by phase under
selective symbolic execution, and collect the wiretap trace, coverage
timeline and statistics.  The output feeds :mod:`repro.synth`.
"""

import itertools
import time
from dataclasses import dataclass, field

from repro.dbt import CodeWindow, Translator
from repro.errors import SymexError
from repro.guestos.loader import load_image
from repro.guestos.structures import ADAPTER_CONTEXT_SIZE, NdisStatus
from repro.isa.registers import REG_SP
from repro.layout import HEAP_BASE, RETURN_TO_OS, STACK_TOP
from repro.revnic.coverage import CoverageTracker, static_basic_blocks
from repro.revnic.exerciser import make_script, make_symbolic_buffer
from repro.revnic.heuristics import StateScheduler, make_strategy
from repro.revnic.osbridge import SymOsBridge
from repro.revnic.shell_device import ShellDevice
from repro.revnic.trace import PathTrace, Trace, TraceSegment
from repro.revnic.wiretap import Wiretap
from repro.symex import expr as E
from repro.symex import frontier
from repro.symex.executor import HardwarePolicy, SymExecutor
from repro.symex.memory import SymMemory
from repro.symex.state import PathStatus, SymState
from repro.symex.solver import Solver
from repro.vm.machine import Machine


@dataclass
class RevNicConfig:
    """Run parameters (the paper's command line + configuration file)."""

    driver_name: str = "driver"
    #: PCI identity of the device whose driver is reverse engineered
    #: (vendor/product id, I/O ranges, IRQ -- from the device manager).
    pci: object = None
    #: exploration strategy: 'coverage' (paper default), 'dfs', 'bfs'
    strategy: str = "coverage"
    #: per-phase translation-block budget
    max_blocks_per_phase: int = 6000
    #: entry-point completion cutoff (paper: after an entry point completes
    #: successfully a given number of times, discard all other paths)
    completion_cutoff: int = 4
    #: the cutoff only fires once exploration has gone this many blocks
    #: without discovering new code (paper section 3.2: "executed
    #: symbolically until no more new code blocks are discovered within
    #: some predefined amount of time")
    stale_window: int = 300
    #: polling-loop kill threshold (local re-executions of one block)
    loop_kill_threshold: int = 12
    max_states: int = 256
    #: functions to skip (paper: OS functions like log writes can be
    #: configured away; name -> forced return value, or name ->
    #: (return value, argument count) for APIs without a bridge handler).
    #: Honored by :class:`~repro.revnic.osbridge.SymOsBridge`.
    skip_functions: dict = field(default_factory=dict)
    #: coverage sample interval in executed blocks
    sample_every: int = 25
    #: exercise script: 'default' (the full NIC script) or 'quick' (the
    #: reduced smoke script).  An explicit ``script=`` argument to
    #: :class:`RevNic` overrides this.
    script: str = "default"
    #: fork depth (relative to each phase root) at which forked states
    #: are parked into the exploration frontier; their sub-trees then run
    #: in isolation -- in-process or sharded across worker processes
    #: (``REVNIC_EXPLORE_WORKERS``) -- and merge into byte-identical
    #: output either way.  0 keeps the single-queue exploration of the
    #: paper's prototype.  Part of the config (and therefore the artifact
    #: cache key) because it changes which paths are explored; the worker
    #: count deliberately is not.
    explore_split_depth: int = 0


@dataclass
class RevNicResult:
    """Everything a RevNIC run produced.

    Self-contained by design: ``import_names`` and the captured ``code``
    window mean downstream synthesis never needs the live engine, so a
    result (and the artifact built from it) can cross a process boundary.
    """

    trace: Trace
    coverage: CoverageTracker
    entry_points: dict
    stats: dict
    dma_regions: list
    #: import slot -> OS API name (from the loaded image)
    import_names: dict = field(default_factory=dict)
    #: relocated text snapshot; the synthesizer's DBT fallback translates
    #: missing blocks from it without a live machine
    code: object = None

    @property
    def coverage_fraction(self):
        return self.coverage.fraction


class RevNic:
    """One reverse-engineering run over one binary driver."""

    def __init__(self, image, config=None, script=None, hardware=None,
                 explore_workers=None):
        """``hardware`` optionally replaces the default
        :class:`HardwarePolicy` (e.g. ``HardwarePolicy(retain_log=True)``
        to keep the full device-access log for inspection).

        ``explore_workers`` shards frontier sub-trees across that many
        worker processes when ``config.explore_split_depth > 0``
        (default: the ``REVNIC_EXPLORE_WORKERS`` environment variable).
        It is a runtime knob only -- results are byte-identical for any
        worker count, including 0/1 (in-process)."""
        self.image = image
        self.config = config or RevNicConfig()
        self.script = script or make_script(self.config.script)
        self.machine = Machine()
        self.loaded = load_image(self.machine, image)
        self.shell = ShellDevice(self.config.pci) if self.config.pci \
            else None
        self.solver = Solver()
        self.translator = Translator(
            lambda addr, size: self.machine.memory.read_bytes(addr, size))
        self.wiretap = Wiretap(self.loaded.text_base, self.loaded.text_end)
        self.entry_points = {}
        self.bridge = SymOsBridge(
            self.solver, self.shell, wiretap=self.wiretap,
            import_names=self.loaded.import_names,
            on_entry_points=self.entry_points.update,
            skip_functions=self.config.skip_functions)
        self.hardware = hardware or HardwarePolicy()
        self.executor = SymExecutor(
            self.translator, self.solver, hardware=self.hardware,
            tracer=self.wiretap,
            is_dma_address=(self.shell.is_dma_address if self.shell
                            else None))
        self.coverage = CoverageTracker(
            static_basic_blocks(image, self.loaded.text_base))
        self.wiretap.coverage = self.coverage
        self.context_address = HEAP_BASE
        self._blocks_total = 0
        self._start_time = None
        self._phase_log = []
        #: sharded-exploration plumbing (active only when
        #: ``config.explore_split_depth > 0``; see repro.symex.frontier)
        self.explore_workers = frontier.env_workers() \
            if explore_workers is None else max(0, int(explore_workers))
        self._id_source = None
        self._subtree_count = itertools.count()
        self._subtree_ctx = None
        self._shard_pool = None
        self._pool_failed = False
        self._frontier_extra = {}       # additive stat deltas, sub-trees
        self._frontier_hw = ({}, {})    # merged hw read/write counts
        self._frontier_stats = {"phases": 0, "subtrees": 0,
                                "subtree_blocks": 0, "max_depth": 0}
        self._frontier_volatile = {"merge_wall_seconds": 0.0,
                                   "fallbacks": 0}
        #: expression-eval work done by *decoding* worker outcomes
        #: (constraint replay solver-context rebuilds run compiled
        #: programs).  Serial exploration never decodes, so this is
        #: subtracted from the run-level eval delta to keep the stats a
        #: pure function of the exploration itself.
        self._eval_overhead = {"program_runs": 0, "node_visits": 0}

    # ------------------------------------------------------------------

    def run(self):
        """Execute the full exercise script; returns a RevNicResult."""
        try:
            return self._run()
        finally:
            if self._shard_pool is not None:
                self._shard_pool.close()

    def _run(self):
        from repro.ir.codecache import codecache_counters

        self._start_time = time.monotonic()
        eval_before = E.eval_counters()
        codecache_before = codecache_counters()
        trace = Trace(driver_name=self.config.driver_name,
                      text_base=self.loaded.text_base,
                      text_size=len(self.image.text))
        continuation = self._initial_state()

        for phase in self.script:
            segment, continuation = self._run_phase(phase, continuation)
            if segment is not None:
                trace.segments.append(segment)
            if phase.interrupt_after and "isr" in self.entry_points:
                from repro.revnic.exerciser import Phase
                segment, continuation = self._run_phase(
                    Phase("isr"), continuation)
                if segment is not None:
                    trace.segments.append(segment)

        trace.entry_points = dict(self.entry_points)
        eval_after = E.eval_counters()
        # Sub-trees run against their own executor/solver/wiretap/bridge
        # (isolation is what makes sharding deterministic), so their
        # counter deltas are merged in from _frontier_extra; all zeros in
        # legacy single-queue mode.
        extra = self._frontier_extra
        codecache_after = codecache_counters()
        hw_read_counts = dict(self.hardware.read_counts)
        hw_write_counts = dict(self.hardware.write_counts)
        for kind, count in self._frontier_hw[0].items():
            hw_read_counts[kind] = hw_read_counts.get(kind, 0) + count
        for kind, count in self._frontier_hw[1].items():
            hw_write_counts[kind] = hw_write_counts.get(kind, 0) + count
        stats = {
            "blocks_executed": self._blocks_total,
            "exec_fast_blocks": (self.executor.fast_blocks
                                 + extra.get("fast_blocks", 0)),
            "forks": self.executor.forks + extra.get("forks", 0),
            "solver_queries": (self.solver.queries
                               + extra.get("solver_queries", 0)),
            "solver_comp_solves": (self.solver.comp_solves
                                   + extra.get("solver_comp_solves", 0)),
            "solver_cache_hits": (self.solver.cache_hits
                                  + extra.get("solver_cache_hits", 0)),
            "solver_fast_path_hits": (self.solver.fast_path_hits
                                      + extra.get("solver_fast_path_hits",
                                                  0)),
            "eval_program_runs": (eval_after["program_runs"]
                                  - eval_before["program_runs"]
                                  - self._eval_overhead["program_runs"]
                                  + extra.get("eval_program_runs", 0)),
            "eval_node_visits": (eval_after["node_visits"]
                                 - eval_before["node_visits"]
                                 - self._eval_overhead["node_visits"]
                                 + extra.get("eval_node_visits", 0)),
            "blocks_recorded": (self.wiretap.blocks_recorded
                                + extra.get("blocks_recorded", 0)),
            "imports_recorded": (self.wiretap.imports_recorded
                                 + extra.get("imports_recorded", 0)),
            "hw_reads": self.hardware.reads_total + extra.get("hw_reads", 0),
            "hw_writes": (self.hardware.writes_total
                          + extra.get("hw_writes", 0)),
            "hw_read_counts": hw_read_counts,
            "hw_write_counts": hw_write_counts,
            "os_calls_handled": (self.bridge.calls_handled
                                 + extra.get("os_calls_handled", 0)),
            "os_calls_skipped": (self.bridge.calls_skipped
                                 + extra.get("os_calls_skipped", 0)),
            "wall_seconds": time.monotonic() - self._start_time,
            "phases": list(self._phase_log),
            # Persistent code-cache outcomes for this run's compiled
            # blocks (symex fast path).  Volatile by construction -- a
            # warm disk cache flips generated into imported -- so the
            # canonical artifact serialization scrubs the values (see
            # repro.pipeline.artifact._scrub_volatile).
            "codecache": {
                key: codecache_after[key] - codecache_before[key]
                for key in sorted(codecache_before)},
        }
        if self.config.explore_split_depth > 0:
            pool = self._shard_pool
            stats["frontier"] = {
                # deterministic keys (part of canonical artifact bytes)
                "split_depth": self.config.explore_split_depth,
                "phases": self._frontier_stats["phases"],
                "subtrees": self._frontier_stats["subtrees"],
                "subtree_blocks": self._frontier_stats["subtree_blocks"],
                "max_depth": self._frontier_stats["max_depth"],
                # volatile keys (scrubbed from canonical JSON; see
                # repro.pipeline.artifact._VOLATILE_FRONTIER)
                "mode": "sharded" if pool is not None else "serial",
                "workers": self.explore_workers,
                "steals": pool.steals if pool is not None else 0,
                "chunk_retries": (pool.chunk_retries
                                  if pool is not None else 0),
                "states_per_worker": (list(pool.served)
                                      if pool is not None else []),
                "merge_wall_seconds":
                    self._frontier_volatile["merge_wall_seconds"],
                "fallbacks": self._frontier_volatile["fallbacks"],
            }
        dma = list(self.shell.dma_regions) if self.shell else []
        code = CodeWindow(self.loaded.text_base,
                          self.machine.memory.read_bytes(
                              self.loaded.text_base, len(self.image.text)))
        return RevNicResult(trace=trace, coverage=self.coverage,
                            entry_points=dict(self.entry_points),
                            stats=stats, dma_regions=dma,
                            import_names=dict(self.loaded.import_names),
                            code=code)

    # ------------------------------------------------------------------

    def _initial_state(self):
        memory = SymMemory(self.machine.memory.read)
        # Fresh id counter per run: every state descends from this root,
        # so path ids (serialized into artifacts) restart at zero for
        # each run regardless of process history.
        self._id_source = itertools.count()
        state = SymState(pc=0, regs=[0] * 16, memory=memory,
                         id_source=self._id_source)
        return state

    def _entry_address(self, name):
        if name == "driver_entry":
            return self.loaded.entry_address
        return self.entry_points.get(name)

    def _prepare_root(self, phase, continuation):
        """Build the phase's root state from the previous continuation."""
        address = self._entry_address(phase.entry)
        if address is None:
            return None
        root = continuation.fork()
        root.parent = None          # cut the trace chain between segments
        root.trace_chain = []
        root.trace_records = []
        root.status = PathStatus.RUNNING
        root.block_counts = {}

        args = []
        if phase.entry != "driver_entry":
            args.append(self.context_address)
        scratch = root.os.heap_next
        for index, spec in enumerate(phase.args):
            kind = spec[0]
            if kind == "const":
                args.append(spec[1])
            elif kind == "sym":
                args.append(E.bv_sym("%s_%s" % (phase.entry, spec[1])))
            elif kind == "buffer":
                size, symbolic_bytes = spec[1], spec[2]
                address_buf = (scratch + 63) & ~63
                scratch = address_buf + size
                make_symbolic_buffer(root, address_buf, size, symbolic_bytes,
                                     "%s_buf%d" % (phase.entry, index))
                args.append(address_buf)
            else:
                raise SymexError("bad arg spec %r" % (spec,))
        root.os.heap_next = scratch

        sp = STACK_TOP
        for value in reversed(args):
            sp -= 4
            root.memory.write(sp, 4, value)
        sp -= 4
        root.memory.write(sp, 4, RETURN_TO_OS)
        root.regs = [0] * 16
        root.regs[REG_SP] = sp
        root.pc = address
        return root

    def _make_scheduler(self):
        return StateScheduler(
            strategy=make_strategy(self.config.strategy),
            loop_kill_threshold=self.config.loop_kill_threshold,
            max_states=self.config.max_states)

    def _on_block(self):
        """Run-wide block accounting hook for the exploration loop."""
        self._blocks_total += 1
        if self._blocks_total % self.config.sample_every == 0:
            self.coverage.sample(self._blocks_total,
                                 time.monotonic() - self._start_time)

    def _append_paths(self, segment, states):
        for state in states:
            records = state.path_trace()
            if records:
                segment.paths.append(PathTrace(
                    path_id=state.id, records=records,
                    status=state.status.value,
                    return_value=state.return_value))

    def _run_phase(self, phase, continuation):
        root = self._prepare_root(phase, continuation)
        if root is None:
            return None, continuation
        if self.config.explore_split_depth > 0:
            # Re-home the root onto the run-wide id counter: a
            # continuation that crossed a process boundary carries a
            # private counter, and child ids must not depend on where the
            # continuation came from.
            root._ids = self._id_source
            root.id = next(self._id_source)
            return self._run_phase_partitioned(phase, root, continuation)
        return self._run_phase_legacy(phase, root, continuation)

    def _run_phase_legacy(self, phase, root, continuation):
        segment = TraceSegment(entry_name=phase.entry,
                               entry_address=root.pc)
        scheduler = self._make_scheduler()
        scheduler.add(root)
        budget = phase.max_blocks or self.config.max_blocks_per_phase
        result = frontier.run_exploration(
            scheduler, self.executor, self.bridge, self.coverage,
            self.config, budget, on_block=self._on_block)

        self._append_paths(segment, result.terminal)
        self.coverage.sample(self._blocks_total,
                             time.monotonic() - self._start_time)
        self._phase_log.append({
            "entry": phase.entry, "blocks": result.blocks,
            "paths": len(segment.paths),
            "completed": len(result.completed),
            "coverage": self.coverage.fraction,
        })
        next_continuation = self._pick_continuation(
            result.completed, result.terminal, continuation)
        return segment, next_continuation

    def _run_phase_partitioned(self, phase, root, continuation):
        """Partitioned exploration: explore the fork-tree prefix up to
        the split depth with the engine's own plumbing, park every state
        that crosses it into the frontier, run each frontier sub-tree in
        isolation (in-process or sharded across workers), and merge the
        outcomes in canonical order -- prefix first, then sub-trees in
        park order.  The merged segment, coverage, entry points and
        counters are byte-identical for any worker count."""
        split_depth = self.config.explore_split_depth
        segment = TraceSegment(entry_name=phase.entry,
                               entry_address=root.pc)
        park = frontier.FrontierPark(split_depth, root.depth)
        scheduler = self._make_scheduler()
        scheduler.add(root)
        budget = phase.max_blocks or self.config.max_blocks_per_phase
        prefix = frontier.run_exploration(
            scheduler, self.executor, self.bridge, self.coverage,
            self.config, budget, park=park, on_block=self._on_block)

        frontier_states = park.states
        remaining = budget - prefix.blocks
        if prefix.cutoff or remaining <= 0:
            # The prefix already decided the phase: parked states die
            # like any other queued state at cutoff/budget exhaustion.
            for state in frontier_states:
                state.status = PathStatus.KILLED
                prefix.terminal.append(state)
            frontier_states = []

        chunks = []
        if frontier_states:
            covered_seed = set(self.coverage.executed)
            dma_seed = [tuple(region)
                        for region in self.shell.dma_regions] \
                if self.shell is not None else []
            # The phase's remaining budget is divided across sub-trees
            # (first `remainder` trees get the extra block), so the
            # partitioned phase never executes more blocks than the
            # per-phase budget allows.
            share, leftover = divmod(remaining, len(frontier_states))
            for position, state in enumerate(frontier_states):
                chunks.append(frontier.SubtreeChunk(
                    index=next(self._subtree_count), state=state,
                    budget=share + (1 if position < leftover else 0),
                    covered_seed=covered_seed, dma_seed=dma_seed))
        outcomes = self._run_subtrees(chunks)

        # Canonical merge: prefix paths first, then each sub-tree's in
        # park order; one coverage sample per merged sub-tree.
        self._append_paths(segment, prefix.terminal)
        blocks = prefix.blocks
        completed = len(prefix.completed)
        phase_max_depth = 0
        for state in prefix.terminal:
            depth = state.depth - root.depth
            if depth > phase_max_depth:
                phase_max_depth = depth
        for outcome in outcomes:
            segment.paths.extend(outcome.paths)
            blocks += outcome.blocks
            completed += outcome.completed_count
            self._blocks_total += outcome.blocks
            self._merge_outcome(outcome)
            self.coverage.sample(self._blocks_total,
                                 time.monotonic() - self._start_time)
            depth = split_depth + outcome.max_depth
            if depth > phase_max_depth:
                phase_max_depth = depth
        fstats = self._frontier_stats
        fstats["phases"] += 1
        fstats["subtrees"] += len(outcomes)
        fstats["subtree_blocks"] += sum(o.blocks for o in outcomes)
        if phase_max_depth > fstats["max_depth"]:
            fstats["max_depth"] = phase_max_depth

        self.coverage.sample(self._blocks_total,
                             time.monotonic() - self._start_time)
        self._phase_log.append({
            "entry": phase.entry, "blocks": blocks,
            "paths": len(segment.paths),
            "completed": completed,
            "coverage": self.coverage.fraction,
        })
        next_continuation = self._pick_continuation_partitioned(
            prefix, outcomes, continuation)
        return segment, next_continuation

    # -- sub-tree fan-out ----------------------------------------------

    def _subtree_context(self):
        if self._subtree_ctx is None:
            self._subtree_ctx = frontier.SubtreeContext(
                translator=self.translator,
                concrete_read=self.machine.memory.read,
                import_names=self.loaded.import_names,
                pci=self.config.pci, config=self.config,
                text_base=self.loaded.text_base,
                text_end=self.loaded.text_end,
                leaders=self.coverage.leaders)
        return self._subtree_ctx

    def _ensure_pool(self):
        if self.explore_workers <= 1 or self._pool_failed:
            return None
        if self._shard_pool is None:
            from repro.pipeline.pool import ChunkPool

            try:
                self._shard_pool = ChunkPool(
                    setup=frontier.worker_setup,
                    bootstrap=(self.image.to_bytes(),
                               frontier.config_to_dict(self.config)),
                    workers=self.explore_workers)
            except Exception:
                # Restricted environments (no spawn) degrade to
                # in-process sub-trees -- same bytes, no speedup.
                self._pool_failed = True
                return None
        return self._shard_pool

    def _run_subtrees(self, chunks):
        """Run sub-tree chunks, sharded when a worker pool is available,
        in-process otherwise; outcomes come back in chunk order either
        way.  Worker failures fall back to in-process re-execution per
        chunk, so sharding can only change wall time, never results."""
        if not chunks:
            return []
        pool = self._ensure_pool()
        outcomes = []
        if pool is not None:
            start = time.monotonic()
            messages = [frontier.encode_chunk(chunk) for chunk in chunks]
            replies = pool.run(messages)
            for chunk, reply in zip(chunks, replies):
                if reply is None:
                    self._frontier_volatile["fallbacks"] += 1
                    outcomes.append(frontier.explore_subtree(
                        self._subtree_context(), chunk))
                else:
                    decode_before = E.eval_counters()
                    outcome = frontier.decode_outcome(
                        reply, self.machine.memory.read)
                    decode_after = E.eval_counters()
                    for key in ("program_runs", "node_visits"):
                        self._eval_overhead[key] += \
                            decode_after[key] - decode_before[key]
                    # Remote expression-eval work never touched this
                    # process's global counters; in-process runs did.
                    for key in ("eval_program_runs", "eval_node_visits"):
                        self._frontier_extra[key] = \
                            self._frontier_extra.get(key, 0) \
                            + outcome.counters[key]
                    outcomes.append(outcome)
            self._frontier_volatile["merge_wall_seconds"] += \
                time.monotonic() - start
        else:
            ctx = self._subtree_context()
            for chunk in chunks:
                outcomes.append(frontier.explore_subtree(ctx, chunk))
        return outcomes

    def _merge_outcome(self, outcome):
        """Fold a sub-tree outcome into run-wide state (counters,
        coverage, entry points, DMA regions) in deterministic order."""
        counters = outcome.counters
        extra = self._frontier_extra
        for key in ("fast_blocks", "forks", "solver_queries",
                    "solver_comp_solves", "solver_cache_hits",
                    "solver_fast_path_hits", "blocks_recorded",
                    "imports_recorded", "os_calls_handled",
                    "os_calls_skipped"):
            extra[key] = extra.get(key, 0) + counters[key]
        extra["hw_reads"] = extra.get("hw_reads", 0) \
            + sum(counters["hw_read_counts"].values())
        extra["hw_writes"] = extra.get("hw_writes", 0) \
            + sum(counters["hw_write_counts"].values())
        reads, writes = self._frontier_hw
        for kind, count in sorted(counters["hw_read_counts"].items()):
            reads[kind] = reads.get(kind, 0) + count
        for kind, count in sorted(counters["hw_write_counts"].items()):
            writes[kind] = writes.get(kind, 0) + count
        self.coverage.executed.update(outcome.covered_new)
        for name, address in outcome.entry_updates:
            self.entry_points[name] = address
        if self.shell is not None:
            for base, size in outcome.dma_added:
                self.shell.register_dma_region(base, size)

    def _pick_continuation_partitioned(self, prefix, outcomes, previous):
        """The partitioned analogue of :meth:`_pick_continuation`: a
        successful completion from the prefix, else from the first
        sub-tree (in park order) that has one, else any completion in
        the same order, else the previous continuation."""
        for state in prefix.completed:
            if frontier.is_success(state.return_value):
                return state
        for outcome in outcomes:
            if outcome.first_success is not None:
                return outcome.first_success
        if prefix.completed:
            return prefix.completed[0]
        for outcome in outcomes:
            if outcome.first_completed is not None:
                return outcome.first_completed
        return previous

    @staticmethod
    def _is_success(return_value):
        if return_value is None:
            return False
        if not isinstance(return_value, int):
            return False
        return return_value == NdisStatus.SUCCESS

    def _pick_continuation(self, completed, terminal, previous):
        """Choose the state exploration continues from: a successful
        completion if any (paper: "discards all paths except one successful
        one"), else any completion, else the previous continuation."""
        for state in completed:
            if self._is_success(state.return_value):
                return state
        if completed:
            return completed[0]
        return previous
