"""Exception hierarchy shared by every subsystem in the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AsmError(ReproError):
    """Raised by the assembler on malformed source."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class BinFmtError(ReproError):
    """Raised when a DRV binary image is malformed."""


class DecodeError(ReproError):
    """Raised when machine code cannot be decoded."""


class VmFault(ReproError):
    """Base class for guest faults raised during concrete execution."""


class MemoryFault(VmFault):
    """Access to an unmapped or protected guest address."""

    def __init__(self, address, kind="access"):
        self.address = address
        self.kind = kind
        super().__init__("memory fault: %s at 0x%08x" % (kind, address))


class BusError(VmFault):
    """I/O-port or MMIO access with no device behind it."""


class InvalidInstruction(VmFault):
    """The CPU fetched an undecodable or illegal instruction."""


class GuestOsError(ReproError):
    """Raised by the guest-OS simulator (bad API usage by a driver, etc.)."""


class SolverError(ReproError):
    """Raised when the constraint solver cannot decide a query."""


class SymexError(ReproError):
    """Raised by the symbolic execution engine."""


class SynthesisError(ReproError):
    """Raised by the trace-to-driver synthesizer."""


class TemplateError(ReproError):
    """Raised when a driver template cannot be instantiated."""


class ArtifactError(ReproError):
    """Raised when a serialized run artifact cannot be decoded."""
