"""Minimal IPv4/UDP packet construction for the benchmark workloads.

The paper's performance benchmark "sends UDP packets of increasing size, up
to the maximum length of an Ethernet frame" (section 5.3); on KitOS it
transmits hand-crafted raw UDP packets since KitOS has no TCP/IP stack.
This module is that hand-crafting code, used by the workload generators in
:mod:`repro.net.traffic`.
"""

import struct

IP_HEADER_LEN = 20
UDP_HEADER_LEN = 8


def _checksum16(data):
    if len(data) % 2:
        data += b"\0"
    total = sum(struct.unpack("!%dH" % (len(data) // 2), data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def build_udp_packet(src_ip, dst_ip, src_port, dst_port, payload, ident=0):
    """Build an IPv4+UDP packet (the Ethernet payload)."""
    udp_len = UDP_HEADER_LEN + len(payload)
    udp = struct.pack("!HHHH", src_port, dst_port, udp_len, 0) + payload
    total_len = IP_HEADER_LEN + udp_len
    header = struct.pack("!BBHHHBBH4s4s", 0x45, 0, total_len, ident, 0,
                         64, 17, 0, src_ip, dst_ip)
    checksum = _checksum16(header)
    header = header[:10] + struct.pack("!H", checksum) + header[12:]
    return header + udp


def parse_udp_packet(data):
    """Parse an IPv4+UDP packet; returns a dict of fields.

    Raises ``ValueError`` on malformed input or checksum mismatch.
    """
    if len(data) < IP_HEADER_LEN + UDP_HEADER_LEN:
        raise ValueError("packet too short")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise ValueError("not IPv4")
    ihl = (version_ihl & 0xF) * 4
    if _checksum16(data[:ihl]) != 0:
        raise ValueError("bad IP header checksum")
    protocol = data[9]
    if protocol != 17:
        raise ValueError("not UDP")
    src_ip, dst_ip = data[12:16], data[16:20]
    src_port, dst_port, udp_len, _checksum = struct.unpack(
        "!HHHH", data[ihl:ihl + UDP_HEADER_LEN])
    payload = data[ihl + UDP_HEADER_LEN:ihl + udp_len]
    return {
        "src_ip": src_ip, "dst_ip": dst_ip,
        "src_port": src_port, "dst_port": dst_port,
        "payload": payload,
    }
