"""The learning Ethernet switch at the center of the fleet fabric.

A :class:`SwitchNode` is a store-and-forward bridge over N ports.  It
learns source MACs per port (with tick-based aging), forwards known
unicast destinations to their learned port, floods unknown-unicast and
multicast/broadcast frames to every other port, filters hairpin traffic
(destination learned on the ingress port), and queues egress frames in
bounded per-port queues with drop accounting -- the classic 802.1D data
path, scaled down to what the fleet scheduler needs.

Everything is deterministic: frames are processed in arrival order,
flooding walks ports in index order, and aging uses the scheduler's
logical tick (never wall clock), so the same topology plus the same
workload produces a byte-identical switch-stats section in the fabric
report regardless of run mode or host load.
"""

from repro.net.ethernet import is_multicast

#: Egress frames a port queues before the switch starts dropping.
DEFAULT_QUEUE_DEPTH = 64
#: Ticks a learned MAC stays valid without fresh traffic from it.
DEFAULT_MAC_AGE = 64


class SwitchPort:
    """One attachment point: a bounded egress queue plus its counters."""

    __slots__ = ("index", "queue", "drops", "delivered", "enqueued")

    def __init__(self, index):
        self.index = index
        self.queue = []
        #: frames dropped because the egress queue was full
        self.drops = 0
        #: frames handed to the endpoint by :meth:`SwitchNode.drain`
        self.delivered = 0
        #: frames accepted into the egress queue
        self.enqueued = 0


class SwitchNode:
    """A learning bridge connecting ``port_count`` endpoints.

    The fabric scheduler owns the clock: ``now`` on :meth:`switch_batch`
    and :meth:`expire` is its logical tick.  A learned entry older than
    ``mac_age`` ticks is treated as absent everywhere (forwarding falls
    back to flood, learning counts a fresh entry), so lookup behavior is
    identical whether :meth:`expire` ran on every intermediate tick (the
    lockstep reference) or only on event ticks (the batched scheduler).
    """

    def __init__(self, port_count, queue_depth=DEFAULT_QUEUE_DEPTH,
                 mac_age=DEFAULT_MAC_AGE):
        if port_count < 2:
            raise ValueError("a switch needs >= 2 ports, got %d"
                             % port_count)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1, got %d"
                             % queue_depth)
        if mac_age < 1:
            raise ValueError("mac_age must be >= 1, got %d" % mac_age)
        self.ports = [SwitchPort(i) for i in range(port_count)]
        self.queue_depth = queue_depth
        self.mac_age = mac_age
        #: mac bytes -> [port_index, last_seen_tick]
        self.table = {}
        self.frames_switched = 0
        #: multicast/broadcast floods
        self.flooded = 0
        #: unicast frames flooded for want of a table entry
        self.unknown_floods = 0
        #: unicast frames whose destination lives on the ingress port
        self.filtered = 0
        #: frames too short to carry a destination address
        self.runts_dropped = 0
        #: learned entries removed (aging, or stale-at-relearn)
        self.aged_out = 0
        #: stations that showed up on a new port (relearn)
        self.moves = 0

    # -- data path -----------------------------------------------------

    def switch_batch(self, ingress, frames, now=0):
        """Switch a burst of frames arriving on port ``ingress``.

        One call per harvested burst -- the fabric's batching boundary.
        Frames land in egress queues (or the drop counters); nothing is
        delivered until :meth:`drain`.
        """
        for frame in frames:
            frame = frame if type(frame) is bytes else bytes(frame)
            if len(frame) < 6:
                self.runts_dropped += 1
                continue
            dst = frame[0:6]
            if len(frame) >= 12:
                self._learn(frame[6:12], ingress, now)
            self.frames_switched += 1
            if is_multicast(dst):
                self.flooded += 1
                self._flood(ingress, frame)
                continue
            entry = self.table.get(dst)
            if entry is not None and now - entry[1] <= self.mac_age:
                if entry[0] == ingress:
                    self.filtered += 1
                else:
                    self._enqueue(self.ports[entry[0]], frame)
            else:
                self.unknown_floods += 1
                self._flood(ingress, frame)

    def drain(self, port_index):
        """Pop everything queued for ``port_index`` -- one delivery burst."""
        port = self.ports[port_index]
        frames, port.queue = port.queue, []
        port.delivered += len(frames)
        return frames

    def _learn(self, src, ingress, now):
        entry = self.table.get(src)
        if entry is None:
            self.table[src] = [ingress, now]
            return
        if now - entry[1] > self.mac_age:
            # The entry should already have been expired; count it so the
            # batched scheduler (which only expires on event ticks) and
            # the lockstep reference (which expires every tick) agree.
            self.aged_out += 1
            self.table[src] = [ingress, now]
            return
        if entry[0] != ingress:
            self.moves += 1
            entry[0] = ingress
        entry[1] = now

    def _flood(self, ingress, frame):
        for port in self.ports:
            if port.index != ingress:
                self._enqueue(port, frame)

    def _enqueue(self, port, frame):
        if len(port.queue) >= self.queue_depth:
            port.drops += 1
        else:
            port.queue.append(frame)
            port.enqueued += 1

    # -- table maintenance ---------------------------------------------

    def lookup(self, mac, now=0):
        """The live port for ``mac`` at tick ``now``, or ``None``."""
        entry = self.table.get(bytes(mac))
        if entry is None or now - entry[1] > self.mac_age:
            return None
        return entry[0]

    def expire(self, now):
        """Remove entries stale at tick ``now``; returns how many aged out."""
        stale = sorted(mac for mac, entry in self.table.items()
                       if now - entry[1] > self.mac_age)
        for mac in stale:
            del self.table[mac]
        self.aged_out += len(stale)
        return len(stale)

    # -- reporting -----------------------------------------------------

    def pending(self):
        """Total frames sitting in egress queues (quiescence check)."""
        return sum(len(port.queue) for port in self.ports)

    def stats(self):
        """JSON-ready, deterministic switch-side section of the report."""
        return {
            "ports": len(self.ports),
            "queue_depth": self.queue_depth,
            "mac_age": self.mac_age,
            "frames_switched": self.frames_switched,
            "flooded": self.flooded,
            "unknown_floods": self.unknown_floods,
            "filtered": self.filtered,
            "runts_dropped": self.runts_dropped,
            "aged_out": self.aged_out,
            "moves": self.moves,
            "queue_drops": sum(port.drops for port in self.ports),
            "per_port": [{"port": port.index, "enqueued": port.enqueued,
                          "delivered": port.delivered, "drops": port.drops}
                         for port in self.ports],
            "table": {mac.hex(): [entry[0], entry[1]]
                      for mac, entry in sorted(self.table.items())},
        }
