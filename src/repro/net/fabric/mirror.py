"""The sampled-endpoint differential: fabric vs dedicated medium.

The fabric's correctness claim is that sitting behind a switch is
invisible to a driver: the same scenario program produces the same
observation whether the endpoint owns a point-to-point
:class:`~repro.net.medium.Medium` or shares a switched segment.
:func:`run_mirrored_program` makes that checkable -- it replays a
program against a DUT on a 2-port fabric, carrying every wire-side
arrival across the switch from a host port (byte-identical frames to
what the step executor would inject) and harvesting every DUT transmit
through the switch to the host.  Driver-local steps run unchanged.

:func:`mirror_verdict` then classifies the fabric observation against
the dedicated-medium run of the same program with the shared divergence
semantics -- the acceptance gate asserts ``match`` (equivalent).
"""

from repro.net.fabric.endpoint import FabricEndpoint, HostEndpoint
from repro.net.fabric.switch import SwitchNode
from repro.net.traffic import (BidirectionalBurst, UdpWorkload,
                               addressed_frame, frame_with_fcs,
                               overflow_burst, oversize_frame, resolve_dst,
                               runt_frame)

#: Vocabulary ops whose traffic arrives *from the wire*: in the mirror
#: these frames originate at the host port and cross the switch.  Every
#: other op is driver-local and executes unchanged.
REMOTE_OPS = frozenset({"inject_burst", "quiet_burst", "inject_tagged",
                        "inject_runt", "inject_oversize", "inject_fcs",
                        "bidirectional"})


def _remote_events(step, dut):
    """The step's wire-side schedule as ``(kind, frame)`` events.

    ``kind`` is ``"rx"`` (normal arrival: inject + service), ``"rx-quiet"``
    (no service) or ``"tx"`` (driver-local send, only from
    ``bidirectional``).  Frame bytes are generated exactly as the
    :mod:`repro.net.traffic` executors generate them, so the fabric
    delivery is byte-identical to the dedicated-medium injection.
    """
    op, p = step.op, step.params
    if op == "inject_burst":
        workload = UdpWorkload(dut.peer, dut.mac, p["size"],
                               src_ip=b"\x0a\x00\x00\x02",
                               dst_ip=b"\x0a\x00\x00\x01",
                               src_port=9001, dst_port=9000)
        return [("rx", frame.to_bytes())
                for frame in workload.frames(p["count"])]
    if op == "quiet_burst":
        return [("rx-quiet", frame)
                for frame in overflow_burst(dut.peer, dut.mac,
                                            count=p["count"],
                                            payload_size=p["size"])]
    if op == "inject_tagged":
        return [("rx", addressed_frame(resolve_dst(p["dst"], dut),
                                       dut.peer, tag=p["tag"]))]
    if op == "inject_runt":
        return [("rx", runt_frame(dut.mac, dut.peer,
                                  total_length=p["length"],
                                  seed=p.get("seed", 0)))]
    if op == "inject_oversize":
        return [("rx", oversize_frame(dut.mac, dut.peer,
                                      payload_length=p["length"],
                                      seed=p.get("seed", 0)))]
    if op == "inject_fcs":
        base = addressed_frame(dut.mac, dut.peer, tag=p["tag"])
        return [("rx", frame_with_fcs(base, corrupt=bool(p["corrupt"])))]
    if op == "bidirectional":
        burst = BidirectionalBurst(dut.mac, dut.peer,
                                   payload_size=p["size"],
                                   rounds=p["rounds"],
                                   pattern=tuple(p["pattern"]))
        return [("tx" if kind == "tx" else "rx", frame)
                for kind, frame in burst.events()]
    raise ValueError("op %r has no wire-side schedule" % (op,))


class MirrorRun:
    """A 2-port fabric hosting one DUT endpoint and one host port."""

    def __init__(self, dut, queue_depth=4096):
        # mac_age effectively infinite: the mirror has no logical clock,
        # and a dedicated medium never forgets its peer either.
        self.switch = SwitchNode(2, queue_depth=queue_depth,
                                 mac_age=1 << 30)
        self.endpoint = FabricEndpoint(0, dut)
        self.host = HostEndpoint(1, dut.peer)
        self.dut = dut

    def _pump_tx(self):
        """Carry freshly transmitted DUT frames across the switch."""
        frames = self.endpoint.harvest()
        if frames:
            self.switch.switch_batch(0, frames)
            self.host.deliver(self.switch.drain(1))
            # A DUT transmit can only reach the host port; anything the
            # switch reflected to port 0 would break the mirror.
            assert not self.switch.drain(0)

    def _carry_rx(self, frame, quiet):
        """One wire-side arrival: host port -> switch -> DUT port."""
        self.host.queue(frame)
        self.switch.switch_batch(1, self.host.harvest())
        self.endpoint.deliver(self.switch.drain(0), quiet=quiet)

    def run(self, program):
        """Replay ``program``; returns the fabric-side observation.

        Same exception discipline as
        :func:`repro.validate.scenarios.run_scenario`: a raising driver
        call is recorded in the observation, not propagated.
        """
        try:
            self.dut.boot()
            for step in program.steps:
                if step.op in REMOTE_OPS:
                    for kind, frame in _remote_events(step, self.dut):
                        if kind == "tx":
                            self.dut.send(frame)
                            self._pump_tx()
                        else:
                            self._carry_rx(frame, quiet=(kind == "rx-quiet"))
                else:
                    step.execute(self.dut)
                self._pump_tx()
        except Exception as exc:  # noqa: BLE001 -- behavior, not plumbing
            self._pump_tx()
            return self.endpoint.observation(program.name, ok=False,
                                             error=type(exc).__name__)
        return self.endpoint.observation(program.name)


def run_mirrored_program(dut, program, queue_depth=4096):
    """Run ``program`` with ``dut`` behind a 2-port switch; returns the
    fabric-side :class:`~repro.validate.observe.Observation`."""
    return MirrorRun(dut, queue_depth=queue_depth).run(program)


def mirror_verdict(make_dut, program, queue_depth=4096):
    """Classify fabric vs dedicated-medium observations for one DUT.

    ``make_dut`` is a zero-argument factory (each side needs a fresh
    instance).  Returns ``(verdict, dedicated_obs, fabric_obs)`` where
    ``verdict`` is the shared
    :class:`~repro.validate.differ.DifferentialVerdict`.
    """
    from repro.validate.differ import classify_observations
    from repro.validate.scenarios import run_scenario

    dedicated = run_scenario(make_dut(), program)
    mirrored = run_mirrored_program(make_dut(), program,
                                    queue_depth=queue_depth)
    return (classify_observations(dedicated, mirrored), dedicated,
            mirrored)
