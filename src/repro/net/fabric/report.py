"""The fabric report: canonical, content-addressed fleet run records.

A fabric report is the complete deterministic record of one fleet run:
topology, workload identity (name + seed + content digest), switch
statistics, per-endpoint counters and fleet totals.  Volatile fields
(wall clock, throughput, scheduler mode and its cost counters) ride
along for benchmarks but are scrubbed by :func:`canonical_fabric_json` --
byte-equality of the canonical form is the fabric determinism relation:
same seed + same topology must produce identical bytes across runs,
across ``REVNIC_PARALLEL`` settings, and across scheduler modes.

Reports persist in the shared :class:`~repro.pipeline.store.
ArtifactStore` under ``fabric-`` keys, content-addressed by workload +
topology + schema + code fingerprint -- the PR 3/PR 7 store discipline.
"""

import hashlib
import json

from repro.pipeline.artifact import canonical_dumps

FABRIC_SCHEMA_VERSION = 1


def build_report(workload, endpoints, run):
    """Assemble the JSON-ready report for one completed :class:`~repro.
    net.fabric.fleet.FabricRun`."""
    per_endpoint = [ep.counters() for ep in endpoints]
    per_driver = {}
    totals = {"steps": 0, "tx_frames": 0, "rx_frames": 0, "delivered": 0,
              "wire_bytes": 0, "link_drops": 0, "irq_count": 0,
              "step_errors": 0}
    for record in per_endpoint:
        driver = record.get("driver", "host")
        cell = per_driver.setdefault(
            driver, {"endpoints": 0, "tx_frames": 0, "rx_frames": 0,
                     "delivered": 0})
        cell["endpoints"] += 1
        cell["tx_frames"] += record["tx_frames"]
        cell["rx_frames"] += record["rx_frames"]
        cell["delivered"] += record.get("delivered", 0)
        totals["steps"] += record["steps"]
        totals["tx_frames"] += record["tx_frames"]
        totals["rx_frames"] += record["rx_frames"]
        totals["delivered"] += record.get("delivered", 0)
        totals["wire_bytes"] += record.get("wire_bytes", 0)
        totals["link_drops"] += record.get("link_drops", 0)
        totals["irq_count"] += record.get("irq_count", 0)
        totals["step_errors"] += len(record.get("step_errors", ()))
    switch = run.switch
    packets = switch.frames_switched
    wall = run.wall_seconds
    return {
        "schema_version": FABRIC_SCHEMA_VERSION,
        "workload": {"name": workload.name, "seed": workload.seed,
                     "count": workload.count,
                     "digest": workload.digest()},
        "topology": {"ports": len(switch.ports),
                     "queue_depth": switch.queue_depth,
                     "mac_age": switch.mac_age},
        "ticks": run.ticks,
        "switch": switch.stats(),
        "endpoints": per_endpoint,
        "per_driver": per_driver,
        "totals": totals,
        # -- volatile (scrubbed from the canonical form) ---------------
        "wall_seconds": round(wall, 6),
        "packets_per_second": round(packets / wall, 1) if wall > 0
        else 0.0,
        "mode": run.mode,
        "scheduler": run.scheduler_counters(),
    }


def fabric_to_json(report):
    """Full-fidelity deterministic JSON (timings included)."""
    return canonical_dumps(report)


def canonical_fabric_json(report):
    """Deterministic JSON with the volatile fields scrubbed.

    Byte-equality of this form is the fabric determinism relation; the
    scheduler mode and its cost counters are volatile *by design* so the
    batched and lockstep schedulers can be byte-compared.
    """
    data = dict(report)
    data["wall_seconds"] = 0.0
    data["packets_per_second"] = 0.0
    data["mode"] = "scrubbed"
    data["scheduler"] = None
    return canonical_dumps(data)


def fabric_key(workload, topology):
    """Store key for one fleet configuration.

    Content-addressed like pipeline and fuzz keys: workload plan +
    topology + schema + code fingerprint, so reports recorded by
    different code never collide with current ones.
    """
    from repro.pipeline.store import code_fingerprint

    digest = hashlib.sha256()
    digest.update(b"fabric-schema:%d|" % FABRIC_SCHEMA_VERSION)
    digest.update(workload.to_json().encode())
    digest.update(b"|")
    digest.update(canonical_dumps(topology).encode())
    digest.update(b"|")
    digest.update(code_fingerprint().encode())
    return "fabric-%s" % digest.hexdigest()


def save_fabric_report(store, workload, report):
    """Persist ``report`` in ``store``; returns the store key."""
    key = fabric_key(workload, report["topology"])
    store.save_json(key, fabric_to_json(report))
    return key


def load_fabric_report(store, workload, topology):
    """The stored report for this configuration, or ``None``."""
    text = store.load_json(fabric_key(workload, topology))
    if text is None:
        return None
    try:
        report = json.loads(text)
    except json.JSONDecodeError:
        return None
    return report if isinstance(report, dict) else None
