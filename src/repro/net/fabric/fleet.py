"""Fleet topology construction and the fabric run loop.

Two schedulers share one switching engine:

* **batched** (the default) is event-driven: endpoints are parked until
  a traffic-program step comes due or the switch has frames for them.
  The run visits only woken endpoints, harvests and delivers frames in
  bursts (one Python-level call per burst), and advances the logical
  clock straight to the next scheduled tick -- idle endpoints and empty
  ticks cost nothing.
* **lockstep** is the polling reference: every endpoint is visited on
  every tick of every switching round, and every frame moves through a
  per-frame call.  It exists to be raced against (the benchmark gate)
  and to cross-check determinism -- both modes produce byte-identical
  canonical fabric reports.

Both schedulers process due steps in endpoint-index order, harvest in
index order, and deliver in port order, so the frame interleaving -- and
therefore every driver-visible observation -- is identical.
"""

import os
import time
from dataclasses import dataclass

from repro.net.fabric.endpoint import FabricEndpoint, fabric_mac
from repro.net.fabric.switch import (DEFAULT_MAC_AGE, DEFAULT_QUEUE_DEPTH,
                                     SwitchNode)

#: Scheduler selection: ``batched`` (default) or ``lockstep``.  Runtime
#: only -- the canonical fabric report is identical under both.
MODE_ENV = "REVNIC_FABRIC_MODE"
#: Per-port egress queue depth.  Part of the topology: changing it
#: changes drop accounting and therefore the report bytes.
QUEUE_DEPTH_ENV = "REVNIC_FABRIC_QUEUE_DEPTH"

_MODES = ("batched", "lockstep")


def fabric_mode(override=None):
    """The effective scheduler mode (argument > environment > default)."""
    mode = override or os.environ.get(MODE_ENV) or "batched"
    if mode not in _MODES:
        raise ValueError("unknown fabric mode %r (have: %s)"
                         % (mode, ", ".join(_MODES)))
    return mode


def fabric_queue_depth(override=None):
    """The effective per-port queue depth (argument > env > default)."""
    if override is not None:
        return int(override)
    value = os.environ.get(QUEUE_DEPTH_ENV)
    return int(value) if value else DEFAULT_QUEUE_DEPTH


@dataclass(frozen=True)
class EndpointSpec:
    """The identity of one fleet endpoint: which synthesized driver, on
    which target OS, under which execution backend."""

    index: int
    driver: str
    os_name: str
    backend: str = "compiled"

    def to_dict(self):
        return {"driver": self.driver, "os": self.os_name,
                "backend": self.backend}


def fleet_specs(count, drivers=None, os_names=None, backends=("compiled",)):
    """A deterministic driver x OS x backend mix for ``count`` endpoints.

    Cycles through every supported (driver, target OS) cell of the
    validation matrix -- expected-unsupported combinations are skipped,
    exactly as the matrix verifies them -- and through ``backends``, so
    any fleet larger than the cell count exercises every combination.
    """
    from repro.drivers import DRIVERS
    from repro.validate.matrix import EXPECTED_UNSUPPORTED, OS_ORDER

    drivers = sorted(DRIVERS) if drivers is None else list(drivers)
    os_names = list(OS_ORDER) if os_names is None else list(os_names)
    cells = [(driver, os_name)
             for os_name in os_names for driver in drivers
             if (driver, os_name) not in EXPECTED_UNSUPPORTED]
    if not cells:
        raise ValueError("no supported driver/OS cells in the request")
    return [EndpointSpec(index=i, driver=cells[i % len(cells)][0],
                         os_name=cells[i % len(cells)][1],
                         backend=backends[i % len(backends)])
            for i in range(count)]


def build_fleet(workload, orchestrator=None, specs=None, drivers=None,
                os_names=None, backends=("compiled",)):
    """Instantiate one :class:`FabricEndpoint` per workload slot.

    Artifacts come from the orchestrator (content-addressed store: warm
    fleets never recompute reverse engineering).  Endpoint ``i`` gets the
    deterministic MAC ``fabric_mac(i)`` and its ring neighbor as the
    default ``peer`` for peer-addressed vocabulary ops.
    """
    from repro.pipeline.orchestrator import PipelineOrchestrator
    from repro.validate.observe import SynthesizedDut

    count = workload.count
    if specs is None:
        specs = fleet_specs(count, drivers=drivers, os_names=os_names,
                            backends=backends)
    if len(specs) != count:
        raise ValueError("%d specs for %d workload slots"
                         % (len(specs), count))
    orchestrator = orchestrator or PipelineOrchestrator()
    artifacts = {name: orchestrator.run(name)
                 for name in sorted({spec.driver for spec in specs})}
    endpoints = []
    for spec, slot in zip(specs, workload.slots):
        dut = SynthesizedDut(artifacts[spec.driver], spec.os_name,
                             mac=fabric_mac(spec.index),
                             exec_backend=spec.backend)
        dut.peer = fabric_mac((spec.index + 1) % count)
        endpoints.append(FabricEndpoint(spec.index, dut, slot=slot,
                                        spec=spec))
    return endpoints


class FabricRun:
    """One fleet execution: endpoints, switch, scheduler and counters.

    ``polls`` / ``wakeups`` / ``rounds`` are scheduler-internal cost
    counters (they differ between modes by design -- the benchmark gate
    reads them); everything driver-visible is mode-invariant.
    """

    def __init__(self, endpoints, switch=None, mode=None,
                 queue_depth=None, mac_age=DEFAULT_MAC_AGE):
        self.endpoints = list(endpoints)
        self.switch = switch or SwitchNode(
            len(self.endpoints), queue_depth=fabric_queue_depth(queue_depth),
            mac_age=mac_age)
        if len(self.switch.ports) != len(self.endpoints):
            raise ValueError("switch has %d ports for %d endpoints"
                             % (len(self.switch.ports),
                                len(self.endpoints)))
        self.mode = fabric_mode(mode)
        self.polls = 0
        self.wakeups = 0
        self.rounds = 0
        self.ticks = 0
        self.wall_seconds = 0.0

    def scheduler_counters(self):
        return {"polls": self.polls, "wakeups": self.wakeups,
                "rounds": self.rounds}

    # -- switching engine (shared by both modes) -----------------------

    def _cycle(self, tick, candidates):
        """Switching rounds at ``tick`` until the fabric is quiescent.

        ``candidates`` are the endpoints that may have fresh TX.  Batched
        mode visits only them (then only delivery receivers); lockstep
        polls the whole fleet every round and moves frames one at a time.
        Non-empty harvests occur for the same endpoints in the same index
        order either way, so the frame interleaving is identical.
        """
        batched = self.mode == "batched"
        endpoints = self.endpoints
        switch = self.switch
        while candidates:
            self.rounds += 1
            if batched:
                visit = [endpoints[i] for i in
                         sorted({ep.index for ep in candidates})]
            else:
                visit = endpoints
            for ep in visit:
                self.polls += 1
                frames = ep.harvest()
                if not frames:
                    continue
                if batched:
                    switch.switch_batch(ep.index, frames, now=tick)
                else:
                    for frame in frames:
                        switch.switch_batch(ep.index, [frame], now=tick)
            receivers = []
            for port in switch.ports:
                burst = switch.drain(port.index)
                if not burst:
                    continue
                ep = endpoints[port.index]
                self.polls += 1
                self.wakeups += 1
                if batched:
                    ep.deliver(burst)
                else:
                    for frame in burst:
                        ep.deliver([frame])
                receivers.append(ep)
            candidates = receivers

    # -- schedulers ----------------------------------------------------

    def run(self, booted=False):
        """Boot the fleet and run the workload to quiescence.

        ``booted=True`` skips the per-endpoint boot (the caller already
        booted them) so ``wall_seconds`` measures the run loop alone --
        boot cost is mode-invariant, and the scheduler gate races the
        schedulers, not driver initialization.  The report bytes are
        identical either way.
        """
        started = time.perf_counter()
        if not booted:
            for ep in self.endpoints:
                ep.boot()
        # Boot settle: a driver that transmits during initialize gets its
        # frames switched before the clock starts, in both modes.
        self._cycle(0, self.endpoints)
        if self.mode == "batched":
            self._run_batched()
        else:
            self._run_lockstep()
        self.wall_seconds = time.perf_counter() - started

    def _run_batched(self):
        agenda = {}
        for ep in self.endpoints:
            due = ep.due_tick()
            if due is not None:
                agenda.setdefault(due, []).append(ep.index)
        last = -1
        while agenda:
            tick = min(agenda)
            touched = []
            for index in sorted(agenda.pop(tick)):
                ep = self.endpoints[index]
                self.polls += 1
                if ep.run_due(tick):
                    self.wakeups += 1
                touched.append(ep)
                due = ep.due_tick()
                if due is not None:
                    agenda.setdefault(due, []).append(index)
            self._cycle(tick, touched)
            self.switch.expire(tick)
            last = tick
        self.ticks = last + 1

    def _run_lockstep(self):
        last = -1
        for ep in self.endpoints:
            final = ep.last_tick()
            if final is not None and final > last:
                last = final
        for tick in range(last + 1):
            for ep in self.endpoints:
                self.polls += 1
                if ep.run_due(tick):
                    self.wakeups += 1
            self._cycle(tick, self.endpoints)
            self.switch.expire(tick)
        self.ticks = last + 1


def run_fleet(workload, orchestrator=None, specs=None, drivers=None,
              os_names=None, backends=("compiled",), mode=None,
              queue_depth=None, mac_age=DEFAULT_MAC_AGE):
    """Build the fleet for ``workload``, run it, and return the report."""
    from repro.net.fabric.report import build_report

    endpoints = build_fleet(workload, orchestrator=orchestrator,
                            specs=specs, drivers=drivers,
                            os_names=os_names, backends=backends)
    run = FabricRun(endpoints, mode=mode, queue_depth=queue_depth,
                    mac_age=mac_age)
    run.run()
    return build_report(workload, endpoints, run)
