"""Fabric endpoints: synthesized drivers (and host stand-ins) as ports.

A :class:`FabricEndpoint` wraps a :class:`~repro.validate.observe`
``DriverUnderTest`` -- in the fleet, always a synthesized driver in a
target-OS template -- and adapts it to the switch's port contract:

* **harvest** pops the burst of frames the driver put on its medium since
  the last visit (one Python call per burst) and remembers them in a wire
  history, so the endpoint's :meth:`observation` still reports the full
  transmit log even though the switch consumed the frames;
* **deliver** pushes a switched burst into the driver; inside the batch
  each frame takes the normal per-frame RX path (inject + interrupt
  service), so driver-visible semantics are identical to a dedicated
  point-to-point medium -- the property the sampled-endpoint differential
  check asserts;
* **run_due** executes the endpoint's scheduled traffic-program steps.

:class:`HostEndpoint` is the driverless counterpart -- a pure frame
source/sink used by the mirror harness and the switch tests.
"""

import hashlib
import json

#: Locally administered unicast OUI-ish prefix for fleet endpoints.
_MAC_PREFIX = b"\x52\x54\x00\xFB"


def fabric_mac(index):
    """The deterministic station MAC of fleet endpoint ``index``."""
    if not 0 <= index <= 0xFFFF:
        raise ValueError("endpoint index out of range: %d" % index)
    return _MAC_PREFIX + bytes([(index >> 8) & 0xFF, index & 0xFF])


class FabricEndpoint:
    """One driver-under-test attached to a switch port.

    ``slot`` is the endpoint's :class:`~repro.net.fabric.workloads.
    EndpointProgram` (its traffic program plus start/stride schedule), or
    ``None`` for a passive endpoint that only reacts to received frames.
    ``spec`` carries the (driver, os, backend) identity for the report.
    """

    def __init__(self, index, dut, slot=None, spec=None):
        self.index = index
        self.dut = dut
        self.mac = dut.mac
        self.slot = slot
        self.spec = spec
        #: frames the switch harvested off this endpoint's medium, in
        #: transmit order (the observation's wire log)
        self.wire_history = []
        self.tx_frames = 0
        self.rx_frames = 0
        self.steps_run = 0
        #: steps whose execution raised (recorded, never fleet-fatal)
        self.step_errors = []
        self._next_step = 0

    # -- lifecycle -----------------------------------------------------

    def boot(self):
        self.dut.boot()

    # -- scheduling ----------------------------------------------------

    def due_tick(self):
        """The tick of the next unexecuted program step, or ``None``."""
        if self.slot is None \
                or self._next_step >= len(self.slot.program.steps):
            return None
        return self.slot.start + self._next_step * self.slot.stride

    def last_tick(self):
        """The tick of the final program step, or ``None`` (no program)."""
        if self.slot is None or not self.slot.program.steps:
            return None
        return self.slot.start \
            + (len(self.slot.program.steps) - 1) * self.slot.stride

    def run_due(self, tick):
        """Execute every program step scheduled at or before ``tick``."""
        ran = 0
        while True:
            due = self.due_tick()
            if due is None or due > tick:
                break
            step = self.slot.program.steps[self._next_step]
            self._next_step += 1
            try:
                step.execute(self.dut)
            except Exception as exc:
                # Same discipline as run_scenario: a failing driver call
                # is an observation about this endpoint, not a reason to
                # kill a fleet of hundreds.  Deterministic, so it cannot
                # break report byte-identity.
                self.step_errors.append([step.op, type(exc).__name__])
            ran += 1
        self.steps_run += ran
        return ran

    # -- switch port contract ------------------------------------------

    def harvest(self):
        """Pop and remember the burst transmitted since the last visit."""
        frames = self.dut.medium.pop_transmitted()
        if frames:
            self.wire_history.extend(frames)
            self.tx_frames += len(frames)
        return frames

    def deliver(self, frames, quiet=False):
        """Deliver a switched burst -- one call per burst.

        Per frame the normal RX path runs (inject + interrupt service),
        exactly what ``dut.inject`` does on a dedicated medium; ``quiet``
        skips servicing (the overflow-pressure path, ``inject_quiet``).
        """
        receive = self.dut.inject_quiet if quiet else self.dut.inject
        for frame in frames:
            receive(frame)
        self.rx_frames += len(frames)

    # -- reporting -----------------------------------------------------

    def observation(self, scenario, ok=True, error=""):
        """The DUT observation with the harvested wire history restored."""
        obs = self.dut.observation(scenario, ok=ok, error=error)
        obs.wire_frames = [f.hex() for f in self.wire_history] \
            + obs.wire_frames
        return obs

    def counters(self):
        """Deterministic per-endpoint section of the fabric report."""
        medium = self.dut.medium
        statuses = json.dumps(self.dut.statuses, sort_keys=True,
                              separators=(",", ":"))
        record = {
            "index": self.index,
            "mac": self.mac.hex(),
            "steps": self.steps_run,
            "tx_frames": self.tx_frames,
            "rx_frames": self.rx_frames,
            "wire_bytes": medium.tx_bytes,
            "link_drops": medium.link_drops,
            "delivered": len(self.dut.delivered),
            "irq_count": self.dut.irq_count,
            "errors": len(self.dut.error_log),
            "step_errors": list(self.step_errors),
            "status_digest":
                hashlib.sha256(statuses.encode()).hexdigest()[:16],
        }
        if self.spec is not None:
            record.update(self.spec.to_dict())
        runtime = getattr(self.dut._front, "runtime", None)
        if runtime is not None:
            record["instrs_retired"] = runtime.env.instrs_retired
            record["calls"] = dict(sorted(runtime.call_counts.items()))
        return record


class HostEndpoint:
    """A driverless frame source/sink port (mirror harness and tests)."""

    def __init__(self, index, mac):
        self.index = index
        self.mac = bytes(mac)
        self._outbox = []
        self.received = []
        self.rx_frames = 0
        self.tx_frames = 0
        self.steps_run = 0

    def boot(self):
        pass

    def due_tick(self):
        return None

    def last_tick(self):
        return None

    def run_due(self, tick):
        return 0

    def queue(self, frame_bytes):
        """Stage a frame for transmission at the next harvest."""
        self._outbox.append(bytes(frame_bytes))

    def harvest(self):
        frames, self._outbox = self._outbox, []
        self.tx_frames += len(frames)
        return frames

    def deliver(self, frames, quiet=False):
        self.received.extend(frames)
        self.rx_frames += len(frames)

    def counters(self):
        return {"index": self.index, "mac": self.mac.hex(), "host": True,
                "steps": self.steps_run, "tx_frames": self.tx_frames,
                "rx_frames": self.rx_frames}
