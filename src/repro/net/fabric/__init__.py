"""Fleet-scale switched fabric: many synthesized drivers, one segment.

The validation matrix runs one driver against one point-to-point
:class:`~repro.net.medium.Medium`.  This package is the opposite shape
-- the ROADMAP's "millions of users" direction: a learning Ethernet
switch (:mod:`~repro.net.fabric.switch`) connects N synthesized-driver
endpoints (:mod:`~repro.net.fabric.endpoint`) exchanging seeded,
replayable cross-traffic (:mod:`~repro.net.fabric.workloads`) under a
batched event-driven scheduler (:mod:`~repro.net.fabric.fleet`), with
every run recorded as a canonical content-addressed report
(:mod:`~repro.net.fabric.report`) and the switch's transparency to any
single driver checked differentially (:mod:`~repro.net.fabric.mirror`).
"""

from repro.net.fabric.endpoint import (FabricEndpoint, HostEndpoint,
                                       fabric_mac)
from repro.net.fabric.fleet import (MODE_ENV, QUEUE_DEPTH_ENV, EndpointSpec,
                                    FabricRun, build_fleet, fabric_mode,
                                    fabric_queue_depth, fleet_specs,
                                    run_fleet)
from repro.net.fabric.mirror import (REMOTE_OPS, mirror_verdict,
                                     run_mirrored_program)
from repro.net.fabric.report import (FABRIC_SCHEMA_VERSION, build_report,
                                     canonical_fabric_json, fabric_key,
                                     fabric_to_json, load_fabric_report,
                                     save_fabric_report)
from repro.net.fabric.switch import (DEFAULT_MAC_AGE, DEFAULT_QUEUE_DEPTH,
                                     SwitchNode, SwitchPort)
from repro.net.fabric.workloads import (WORKLOADS, EndpointProgram,
                                        FleetWorkload, build_workload)

__all__ = [
    "FabricEndpoint", "HostEndpoint", "fabric_mac",
    "MODE_ENV", "QUEUE_DEPTH_ENV", "EndpointSpec", "FabricRun",
    "build_fleet", "fabric_mode", "fabric_queue_depth", "fleet_specs",
    "run_fleet",
    "REMOTE_OPS", "mirror_verdict", "run_mirrored_program",
    "FABRIC_SCHEMA_VERSION", "build_report", "canonical_fabric_json",
    "fabric_key", "fabric_to_json", "load_fabric_report",
    "save_fabric_report",
    "DEFAULT_MAC_AGE", "DEFAULT_QUEUE_DEPTH", "SwitchNode", "SwitchPort",
    "WORKLOADS", "EndpointProgram", "FleetWorkload", "build_workload",
]
