"""Fleet traffic programs: seeded, replayable saturation/soak workloads.

Every workload is a pure function of ``(endpoint count, seed)`` built
from the PR 6 :class:`~repro.net.traffic.ScenarioProgram` vocabulary:
each endpoint gets its own program (a step list) plus a ``(start,
stride)`` schedule placing those steps on the fabric's logical clock.
The seed is recorded in the :class:`FleetWorkload` and in every program,
so a fabric run replays bit-for-bit from the workload name, count and
seed alone -- the same discipline as the fuzzer's campaigns.

The schedules are deliberately sparse and staggered: at any tick most
endpoints have nothing scheduled, which is exactly the shape where the
batched event-driven scheduler wins over lockstep polling.
"""

import hashlib
import json
import random
from dataclasses import dataclass

from repro.net.ethernet import BROADCAST_MAC
from repro.net.fabric.endpoint import fabric_mac
from repro.net.traffic import ScenarioProgram, ScenarioStep


@dataclass(frozen=True)
class EndpointProgram:
    """One endpoint's slot: its program and its place on the clock.

    Step ``k`` of ``program`` executes at tick ``start + k * stride``.
    """

    program: ScenarioProgram
    start: int = 0
    stride: int = 1

    def to_dict(self):
        return {"start": self.start, "stride": self.stride,
                "program": self.program.to_dict()}

    @classmethod
    def from_dict(cls, data):
        return cls(program=ScenarioProgram.from_dict(data["program"]),
                   start=data["start"], stride=data["stride"])


@dataclass(frozen=True)
class FleetWorkload:
    """A complete fleet traffic plan: one slot per endpoint."""

    name: str
    seed: int
    slots: tuple

    @property
    def count(self):
        return len(self.slots)

    def to_dict(self):
        return {"name": self.name, "seed": self.seed,
                "slots": [slot.to_dict() for slot in self.slots]}

    def to_json(self):
        """Canonical JSON -- the replayable workload record."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self):
        """Content digest of the full plan (report integrity field)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], seed=data["seed"],
                   slots=tuple(EndpointProgram.from_dict(s)
                               for s in data["slots"]))


def _program(name, seed, steps):
    return ScenarioProgram(name=name, seed=seed, steps=tuple(steps),
                           description="fleet workload program")


def _send_to(dst_mac, count, size):
    return ScenarioStep("send_to", {"dst": dst_mac.hex(), "count": count,
                                    "size": size})


def all_pairs(count, seed, targets=3, burst=2, size=128):
    """Cross-traffic: every endpoint bursts at ``targets`` sampled peers.

    The first burst to a yet-unlearned peer floods; once the peer has
    talked, traffic unicasts -- so the workload exercises learning,
    flood-on-unknown and steady-state forwarding in one plan.
    """
    rng = random.Random(seed)
    slots = []
    for index in range(count):
        steps = []
        for _ in range(targets):
            peer = rng.randrange(count - 1)
            if peer >= index:
                peer += 1           # never self-address
            steps.append(_send_to(fabric_mac(peer), burst, size))
        steps.append(ScenarioStep("service", {}))
        slots.append(EndpointProgram(
            program=_program("all-pairs-%d" % index, seed, steps),
            start=rng.randrange(4), stride=1 + rng.randrange(3)))
    return FleetWorkload("all_pairs", seed, tuple(slots))


def broadcast_storm(count, seed, talkers=None, rounds=3, burst=2,
                    size=64):
    """A few stations flood everyone; the rest only wake on arrival."""
    rng = random.Random(seed)
    if talkers is None:
        talkers = max(2, count // 8)
    talking = sorted(rng.sample(range(count), talkers))
    slots = []
    for index in range(count):
        if index not in talking:
            slots.append(EndpointProgram(
                program=_program("storm-quiet-%d" % index, seed, ())))
            continue
        steps = [_send_to(BROADCAST_MAC, burst, size)
                 for _ in range(rounds)]
        slots.append(EndpointProgram(
            program=_program("storm-talker-%d" % index, seed, steps),
            start=rng.randrange(3), stride=1 + rng.randrange(2)))
    return FleetWorkload("broadcast_storm", seed, tuple(slots))


def incast(count, seed, burst=4, size=256):
    """Hot-receiver pressure: everyone bursts at endpoint 0 at once.

    All senders fire on the same tick, so the victim port's bounded
    queue fills within a single switching round -- the drop-accounting
    workload.
    """
    rng = random.Random(seed)
    victim = fabric_mac(0)
    slots = [EndpointProgram(
        program=_program("incast-victim", seed,
                         (ScenarioStep("service", {}),)), start=6)]
    for index in range(1, count):
        steps = [_send_to(victim, burst, size),
                 ScenarioStep("service", {})]
        slots.append(EndpointProgram(
            program=_program("incast-sender-%d" % index, seed, steps),
            start=rng.randrange(2), stride=2))
    return FleetWorkload("incast", seed, tuple(slots))


def churn(count, seed, flappers=None, burst=2, size=128):
    """Cross-traffic under link flaps: a sampled subset of endpoints
    pulls its cable mid-plan (frames into the void, recovery reset)
    while the rest keep talking."""
    rng = random.Random(seed)
    if flappers is None:
        flappers = max(1, count // 4)
    flapping = set(rng.sample(range(count), flappers))
    slots = []
    for index in range(count):
        peer = rng.randrange(count - 1)
        if peer >= index:
            peer += 1
        steps = [_send_to(fabric_mac(peer), burst, size)]
        if index in flapping:
            steps.append(ScenarioStep("link_flap",
                                      {"size": size, "frames_down": 2}))
        steps.append(_send_to(fabric_mac(peer), burst, size))
        steps.append(ScenarioStep("service", {}))
        slots.append(EndpointProgram(
            program=_program("churn-%d" % index, seed, steps),
            start=rng.randrange(4), stride=1 + rng.randrange(3)))
    return FleetWorkload("churn", seed, tuple(slots))


def saturation(count, seed, rounds=3, burst=2, size=256, spread=1):
    """The soak default: ring cross-traffic (``i`` bursts at ``i+1``)
    for ``rounds`` cycles with interleaved service drains -- every
    endpoint both sends and receives every round.

    ``spread`` stretches every schedule by that factor: real fleets are
    idle at almost every tick, and a large spread models that shape --
    the regime where event-driven scheduling pays (the benchmark gate
    runs a wide spread; lockstep polling has to walk every endpoint
    through every empty tick).
    """
    rng = random.Random(seed)
    slots = []
    for index in range(count):
        peer = fabric_mac((index + 1) % count)
        steps = []
        for _ in range(rounds):
            steps.append(_send_to(peer, burst, size))
            steps.append(ScenarioStep("service", {}))
        slots.append(EndpointProgram(
            program=_program("saturation-%d" % index, seed, steps),
            start=rng.randrange(3) * spread,
            stride=(1 + rng.randrange(2)) * spread))
    return FleetWorkload("saturation", seed, tuple(slots))


#: Name -> builder; every builder is a pure function of (count, seed).
WORKLOADS = {
    "all_pairs": all_pairs,
    "broadcast_storm": broadcast_storm,
    "incast": incast,
    "churn": churn,
    "saturation": saturation,
}


def build_workload(name, count, seed, **kwargs):
    """Build workload ``name`` for ``count`` endpoints under ``seed``."""
    if name not in WORKLOADS:
        raise ValueError("unknown fleet workload %r (have: %s)"
                         % (name, ", ".join(sorted(WORKLOADS))))
    return WORKLOADS[name](count, seed, **kwargs)
