"""The software network medium ("cable") NIC models attach to."""


class Medium:
    """Records frames transmitted by an attached NIC and injects frames
    toward it.

    The evaluation uses the medium both as the traffic sink for throughput
    measurement and as the injection point for receive-path workloads.
    The link can be taken down (:meth:`set_link`) to model a cable pull:
    frames in either direction are silently dropped (and counted) while
    the link is down -- the validation matrix's link-flap scenario.
    """

    def __init__(self):
        self.transmitted = []
        self._receiver = None
        #: Total payload bytes transmitted (throughput accounting).
        self.tx_bytes = 0
        self.link_up = True
        #: Frames lost to a downed link (either direction).
        self.link_drops = 0

    def attach(self, nic):
        """Attach ``nic``; its ``receive_frame(bytes)`` gets injected frames."""
        self._receiver = nic

    def set_link(self, up):
        """Raise or drop the physical link."""
        self.link_up = bool(up)

    def transmit(self, frame_bytes):
        """Called by a NIC model when it puts a frame on the wire."""
        if not self.link_up:
            self.link_drops += 1
            return
        self.transmitted.append(bytes(frame_bytes))
        self.tx_bytes += len(frame_bytes)

    def inject(self, frame_bytes):
        """Deliver a frame from the network toward the attached NIC."""
        if self._receiver is None:
            raise RuntimeError("no NIC attached to medium")
        if not self.link_up:
            self.link_drops += 1
            return
        self._receiver.receive_frame(bytes(frame_bytes))

    def pop_transmitted(self):
        """Return and clear the transmitted-frame log."""
        frames, self.transmitted = self.transmitted, []
        return frames
