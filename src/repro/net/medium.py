"""The software network medium ("cable") NIC models attach to."""


class Medium:
    """Records frames transmitted by an attached NIC and injects frames
    toward it.

    The evaluation uses the medium both as the traffic sink for throughput
    measurement and as the injection point for receive-path workloads.
    """

    def __init__(self):
        self.transmitted = []
        self._receiver = None
        #: Total payload bytes transmitted (throughput accounting).
        self.tx_bytes = 0

    def attach(self, nic):
        """Attach ``nic``; its ``receive_frame(bytes)`` gets injected frames."""
        self._receiver = nic

    def transmit(self, frame_bytes):
        """Called by a NIC model when it puts a frame on the wire."""
        self.transmitted.append(bytes(frame_bytes))
        self.tx_bytes += len(frame_bytes)

    def inject(self, frame_bytes):
        """Deliver a frame from the network toward the attached NIC."""
        if self._receiver is None:
            raise RuntimeError("no NIC attached to medium")
        self._receiver.receive_frame(bytes(frame_bytes))

    def pop_transmitted(self):
        """Return and clear the transmitted-frame log."""
        frames, self.transmitted = self.transmitted, []
        return frames
