"""The software network medium ("cable") NIC models attach to."""


def _as_bytes(frame_bytes):
    """Normalize any bytes-like frame to immutable ``bytes`` exactly once.

    Device models and batched fabric paths hand frames around as
    ``bytearray``/``memoryview`` scratch buffers; converting at the medium
    boundary guarantees no mutable buffer is ever stored in a transmit log
    or delivered to a receiver where a later in-place edit could corrupt a
    recorded observation.
    """
    return frame_bytes if type(frame_bytes) is bytes else bytes(frame_bytes)


class Medium:
    """Records frames transmitted by an attached NIC and injects frames
    toward it.

    The evaluation uses the medium both as the traffic sink for throughput
    measurement and as the injection point for receive-path workloads.
    The link can be taken down (:meth:`set_link`) to model a cable pull:
    frames in either direction are silently dropped (and counted) while
    the link is down -- the validation matrix's link-flap scenario.
    """

    def __init__(self):
        self.transmitted = []
        self._receiver = None
        #: Total payload bytes transmitted (throughput accounting).
        self.tx_bytes = 0
        self.link_up = True
        #: Frames lost to a downed link (either direction).
        self.link_drops = 0

    def attach(self, nic):
        """Attach ``nic``; its ``receive_frame(bytes)`` gets injected frames."""
        self._receiver = nic

    def set_link(self, up):
        """Raise or drop the physical link."""
        self.link_up = bool(up)

    def transmit(self, frame_bytes):
        """Called by a NIC model when it puts a frame on the wire."""
        frame_bytes = _as_bytes(frame_bytes)
        if not self.link_up:
            self.link_drops += 1
            return
        self.transmitted.append(frame_bytes)
        self.tx_bytes += len(frame_bytes)

    def inject(self, frame_bytes):
        """Deliver a frame from the network toward the attached NIC."""
        frame_bytes = _as_bytes(frame_bytes)
        if self._receiver is None:
            raise RuntimeError("no NIC attached to medium")
        if not self.link_up:
            self.link_drops += 1
            return
        self._receiver.receive_frame(frame_bytes)

    def pending_tx(self):
        """Number of transmitted frames awaiting harvest (fabric poll)."""
        return len(self.transmitted)

    def pop_transmitted(self):
        """Return and clear the transmitted-frame log, as ``bytes``."""
        frames, self.transmitted = self.transmitted, []
        return [_as_bytes(frame) for frame in frames]
