"""Workload generation for the evaluation benchmarks and the validation
matrix.

The first half is the paper's own workload: deterministic UDP streams of
fixed payload size (the x axis of Figures 2-7).  The second half is the
adversarial catalog the cross-OS validation matrix (:mod:`repro.validate`)
drives through every driver: runt / oversize / bad-FCS frames,
bidirectional bursts, and RX-ring overflow pressure.  Every generator is
deterministic -- two instances with the same parameters produce identical
byte streams -- because the matrix compares the original binary and the
synthesized driver on *exactly* the same traffic.
"""

import json
from dataclasses import dataclass, field

from repro.net.crc import crc32_ethernet
from repro.net.ethernet import (HEADER_LEN, MAX_PAYLOAD, MIN_PAYLOAD,
                                EthernetFrame, EtherType)
from repro.net.packet import IP_HEADER_LEN, UDP_HEADER_LEN, build_udp_packet

#: UDP payload sizes swept by the paper's figures (x axis 0..1400+ bytes,
#: "up to the maximum length of an Ethernet frame").
DEFAULT_SIZES = (64, 128, 256, 400, 512, 700, 800, 1000, 1100, 1200, 1400,
                 1472)


def packet_size_sweep(max_payload=None):
    """Return the UDP payload sizes used on the x axis of Figures 2-7.

    ``max_payload`` caps the sweep; values above the Ethernet limit
    (1500 minus IP and UDP headers) clamp to it, ``0`` yields an empty
    sweep, and negative values are rejected.
    """
    limit = MAX_PAYLOAD - IP_HEADER_LEN - UDP_HEADER_LEN
    if max_payload is None:
        max_payload = limit
    if max_payload < 0:
        raise ValueError("max_payload must be >= 0, got %d" % max_payload)
    return tuple(s for s in DEFAULT_SIZES if s <= min(max_payload, limit))


class UdpWorkload:
    """Deterministic UDP traffic generator.

    Produces Ethernet frames carrying UDP packets of a fixed payload size,
    mirroring the benchmark of paper section 5.3.
    """

    def __init__(self, src_mac, dst_mac, payload_size,
                 src_ip=b"\x0a\x00\x00\x01", dst_ip=b"\x0a\x00\x00\x02",
                 src_port=9000, dst_port=9001):
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.payload_size = payload_size
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self._ident = 0

    def next_frame(self):
        """Build the next frame in the stream."""
        payload = bytes((self._ident + i) & 0xFF
                        for i in range(self.payload_size))
        packet = build_udp_packet(self.src_ip, self.dst_ip, self.src_port,
                                  self.dst_port, payload, ident=self._ident)
        self._ident = (self._ident + 1) & 0xFFFF
        if len(packet) < 46:
            packet += b"\0" * (46 - len(packet))
        return EthernetFrame(dst=self.dst_mac, src=self.src_mac,
                             ethertype=EtherType.IPV4, payload=packet)

    def frames(self, count):
        """Yield ``count`` frames."""
        for _ in range(count):
            yield self.next_frame()


# ==========================================================================
# Adversarial generators (the validation-matrix workload catalog)

def _pattern(length, seed=0):
    """Deterministic filler bytes."""
    return bytes((seed + i * 7 + 3) & 0xFF for i in range(length))


def runt_frame(dst, src, total_length=32, seed=0):
    """A frame shorter than the 60-byte Ethernet minimum, as raw bytes.

    Deliberately bypasses :class:`EthernetFrame`'s length validation: the
    point is to hand the device models (and through them the drivers)
    malformed wire input.  ``total_length`` must cover at least the
    destination address and stay below the legal minimum.
    """
    minimum = HEADER_LEN + MIN_PAYLOAD
    if not 6 <= total_length < minimum:
        raise ValueError("runt length must be in [6, %d), got %d"
                         % (minimum, total_length))
    raw = (bytes(dst) + bytes(src)
           + int(EtherType.IPV4).to_bytes(2, "big")
           + _pattern(max(total_length - HEADER_LEN, 0), seed))
    return raw[:total_length]


def oversize_frame(dst, src, payload_length=MAX_PAYLOAD + 100, seed=0):
    """A frame whose payload exceeds the 1500-byte Ethernet maximum.

    Capped at 1900 payload bytes so the frame still fits the smallest
    on-chip packet buffer of the device models; the interesting question
    is how the *driver* handles it, not whether the model's memory wraps.
    """
    if not MAX_PAYLOAD < payload_length <= 1900:
        raise ValueError("oversize payload must be in (%d, 1900], got %d"
                         % (MAX_PAYLOAD, payload_length))
    return (bytes(dst) + bytes(src)
            + int(EtherType.IPV4).to_bytes(2, "big")
            + _pattern(payload_length, seed))


def frame_with_fcs(frame_bytes, corrupt=False):
    """Append the CRC-32 FCS to ``frame_bytes``; ``corrupt=True`` inverts
    it (a frame any checking receiver must reject)."""
    fcs = crc32_ethernet(frame_bytes)
    if corrupt:
        fcs ^= 0xFFFFFFFF
    return bytes(frame_bytes) + fcs.to_bytes(4, "little")


def addressed_frame(dst, src, tag=0, payload_size=64):
    """A well-formed frame whose payload encodes ``tag`` (so deliveries
    can be traced back to the injected frame that caused them)."""
    payload = bytes([tag & 0xFF]) + _pattern(payload_size - 1, seed=tag)
    return EthernetFrame(dst=bytes(dst), src=bytes(src),
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


def overflow_burst(src_mac, dst_mac, count=40, payload_size=300):
    """``count`` back-to-back RX frames for ring-overflow pressure.

    Injected without servicing interrupts in between, these overrun any
    bounded RX ring; the matrix checks that the original and synthesized
    drivers drop and recover identically.
    """
    workload = UdpWorkload(src_mac, dst_mac, payload_size)
    return [frame.to_bytes() for frame in workload.frames(count)]


class BidirectionalBurst:
    """Deterministic interleaved TX/RX burst schedule.

    Yields ``('tx', frame_bytes)`` / ``('rx', frame_bytes)`` events:
    bursts of sends interleaved with bursts of receives, with burst
    lengths cycling through ``pattern``.  Models the full-duplex traffic
    mix the paper's unidirectional UDP sweep never exercises.
    """

    def __init__(self, mac, peer, payload_size=128, rounds=4,
                 pattern=(1, 3, 2)):
        if not pattern or any(n < 0 for n in pattern):
            raise ValueError("pattern must be non-empty and non-negative")
        self.tx = UdpWorkload(mac, peer, payload_size)
        self.rx = UdpWorkload(peer, mac, payload_size,
                              src_ip=b"\x0a\x00\x00\x02",
                              dst_ip=b"\x0a\x00\x00\x01",
                              src_port=9001, dst_port=9000)
        self.rounds = rounds
        self.pattern = tuple(pattern)

    def events(self):
        """Yield the full schedule as ``(kind, frame_bytes)`` tuples."""
        for round_index in range(self.rounds):
            tx_burst = self.pattern[round_index % len(self.pattern)]
            rx_burst = self.pattern[(round_index + 1) % len(self.pattern)]
            for frame in self.tx.frames(tx_burst):
                yield "tx", frame.to_bytes()
            for frame in self.rx.frames(rx_burst):
                yield "rx", frame.to_bytes()


# ==========================================================================
# Scenario programs (the fuzzer's replayable workload formalization)
#
# A ScenarioProgram lifts the ad-hoc scenario functions of
# repro.validate.scenarios into *data*: an ordered list of ScenarioSteps,
# each a (op, params) pair over the DriverUnderTest facade vocabulary.
# Programs serialize to canonical JSON, so any fuzzer-generated workload
# replays bit-for-bit from its serialized form alone -- no generator, no
# seed, no library version required.  A program duck-types the Scenario
# contract (name / requires / run), so everything that can drive a
# catalog scenario (run_scenario, the matrix, the differential fuzzer)
# can drive a program unchanged.

#: Destination-address palette for injected frames.  ``station`` resolves
#: to the DUT's programmed MAC at run time; everything else is a fixed
#: address so serialized programs stay self-contained.
DST_KINDS = {
    "station": None,
    "stranger": b"\x02\x99\x02\x99\x02\x99",
    "broadcast": b"\xff" * 6,
    "multicast_a": b"\x01\x00\x5e\x00\x00\x01",
    "multicast_b": b"\x01\x00\x5e\x00\x00\x17",
    "multicast_out": b"\x01\x00\x5e\x7f\x00\x42",
}

#: Multicast groups a ``set_multicast`` step may program, by palette key.
MULTICAST_GROUPS = ("multicast_a", "multicast_b", "multicast_out")


def resolve_dst(kind, dut):
    """The destination MAC a palette ``kind`` names for this DUT."""
    if kind not in DST_KINDS:
        raise ValueError("unknown dst kind %r" % (kind,))
    resolved = DST_KINDS[kind]
    return dut.mac if resolved is None else resolved


# -- step executors: one per vocabulary op ---------------------------------

def _step_send_burst(dut, p):
    workload = UdpWorkload(dut.mac, dut.peer, p["size"])
    for frame in workload.frames(p["count"]):
        dut.send(frame.to_bytes())


def _step_send_to(dut, p):
    """A TX burst to an explicit destination MAC (hex in the params, so
    serialized programs stay self-contained).  The fabric workloads use
    this for cross-traffic between endpoints; on a dedicated medium it is
    just ``send_burst`` with a different address."""
    workload = UdpWorkload(dut.mac, bytes.fromhex(p["dst"]), p["size"])
    for frame in workload.frames(p["count"]):
        dut.send(frame.to_bytes())


def _step_inject_burst(dut, p):
    workload = UdpWorkload(dut.peer, dut.mac, p["size"],
                           src_ip=b"\x0a\x00\x00\x02",
                           dst_ip=b"\x0a\x00\x00\x01",
                           src_port=9001, dst_port=9000)
    for frame in workload.frames(p["count"]):
        dut.inject(frame.to_bytes())


def _step_quiet_burst(dut, p):
    for frame in overflow_burst(dut.peer, dut.mac, count=p["count"],
                                payload_size=p["size"]):
        dut.inject_quiet(frame)


def _step_service(dut, p):
    dut.service()


def _step_inject_tagged(dut, p):
    dut.inject(addressed_frame(resolve_dst(p["dst"], dut), dut.peer,
                               tag=p["tag"]))


def _step_inject_runt(dut, p):
    dut.inject(runt_frame(dut.mac, dut.peer, total_length=p["length"],
                          seed=p.get("seed", 0)))


def _step_inject_oversize(dut, p):
    dut.inject(oversize_frame(dut.mac, dut.peer,
                              payload_length=p["length"],
                              seed=p.get("seed", 0)))


def _step_inject_fcs(dut, p):
    base = addressed_frame(dut.mac, dut.peer, tag=p["tag"])
    dut.inject(frame_with_fcs(base, corrupt=bool(p["corrupt"])))


def _step_bidirectional(dut, p):
    burst = BidirectionalBurst(dut.mac, dut.peer,
                               payload_size=p["size"],
                               rounds=p["rounds"],
                               pattern=tuple(p["pattern"]))
    for kind, frame in burst.events():
        if kind == "tx":
            dut.send(frame)
        else:
            dut.inject(frame)


def _step_set_link(dut, p):
    dut.set_link(bool(p["up"]))


def _step_link_flap(dut, p):
    """The proven cable-pull pattern: link down, traffic into the void,
    link up, reset (the driver-visible recovery the catalog exercises)."""
    dut.set_link(False)
    workload = UdpWorkload(dut.mac, dut.peer, p["size"])
    for frame in workload.frames(p["frames_down"]):
        dut.send(frame.to_bytes())
    dut.set_link(True)
    dut.reset()


def _step_reset(dut, p):
    dut.reset()


def _step_set_filter(dut, p):
    dut.set_packet_filter(p["flags"])


def _step_set_multicast(dut, p):
    dut.set_multicast_list([resolve_dst(g, dut) for g in p["groups"]])


def _step_query_mac(dut, p):
    dut.query_mac()


def _step_query_link_speed(dut, p):
    dut.query_link_speed()


@dataclass(frozen=True)
class StepSpec:
    """One vocabulary op: its executor and the entry-point roles (beyond
    initialize/send/isr) a driver must carry to run it."""

    execute: callable
    requires: tuple = ()


#: The step vocabulary.  Adding an op here is all the formal machinery a
#: new fuzz strategy needs: generators emit (op, params), replay runs it.
STEP_VOCABULARY = {
    "send_burst": StepSpec(_step_send_burst),
    "send_to": StepSpec(_step_send_to),
    "inject_burst": StepSpec(_step_inject_burst),
    "quiet_burst": StepSpec(_step_quiet_burst),
    "service": StepSpec(_step_service),
    "inject_tagged": StepSpec(_step_inject_tagged),
    "inject_runt": StepSpec(_step_inject_runt),
    "inject_oversize": StepSpec(_step_inject_oversize),
    "inject_fcs": StepSpec(_step_inject_fcs),
    "bidirectional": StepSpec(_step_bidirectional),
    "set_link": StepSpec(_step_set_link),
    "link_flap": StepSpec(_step_link_flap, requires=("reset",)),
    "reset": StepSpec(_step_reset, requires=("reset",)),
    "set_filter": StepSpec(_step_set_filter,
                           requires=("set_information",)),
    "set_multicast": StepSpec(_step_set_multicast,
                              requires=("set_information",)),
    "query_mac": StepSpec(_step_query_mac,
                          requires=("query_information",)),
    "query_link_speed": StepSpec(_step_query_link_speed,
                                 requires=("query_information",)),
}


@dataclass(frozen=True)
class ScenarioStep:
    """One (op, params) pair over the DriverUnderTest vocabulary."""

    op: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in STEP_VOCABULARY:
            raise ValueError("unknown step op %r" % (self.op,))
        # a step is a value: detach from the caller's mutable dict
        object.__setattr__(self, "params", dict(self.params))

    @property
    def requires(self):
        return STEP_VOCABULARY[self.op].requires

    def execute(self, dut):
        STEP_VOCABULARY[self.op].execute(dut, self.params)

    def to_list(self):
        """``[op, params]`` -- the serialized step form."""
        return [self.op, dict(self.params)]

    @classmethod
    def from_list(cls, data):
        op, params = data
        return cls(op=op, params=dict(params))


@dataclass(frozen=True)
class ScenarioProgram:
    """A replayable workload: boot, then a fixed step list.

    Duck-types the :class:`repro.validate.scenarios.Scenario` contract
    (``name`` / ``description`` / ``requires`` / ``run``), so programs
    flow through ``run_scenario`` and the differential machinery exactly
    like catalog scenarios.  ``seed`` records how the program was
    generated; replay never uses it -- the step list alone is the
    program.
    """

    name: str
    steps: tuple
    seed: int = 0
    description: str = "generated scenario program"

    @property
    def requires(self):
        roles = set()
        for step in self.steps:
            roles.update(step.requires)
        return tuple(sorted(roles))

    def run(self, dut):
        dut.boot()
        for step in self.steps:
            step.execute(dut)

    # -- serialization (canonical: replay needs the JSON alone) --------

    def to_dict(self):
        return {"name": self.name, "seed": self.seed,
                "description": self.description,
                "steps": [step.to_list() for step in self.steps]}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], seed=data.get("seed", 0),
                   description=data.get("description",
                                        "generated scenario program"),
                   steps=tuple(ScenarioStep.from_list(s)
                               for s in data["steps"]))

    def to_json(self):
        """Canonical JSON: sorted keys, no whitespace -- two equal
        programs serialize byte-identically."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))
