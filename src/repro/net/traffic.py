"""Workload generation for the evaluation benchmarks."""

from repro.net.ethernet import MAX_PAYLOAD, EthernetFrame, EtherType
from repro.net.packet import IP_HEADER_LEN, UDP_HEADER_LEN, build_udp_packet

#: UDP payload sizes swept by the paper's figures (x axis 0..1400+ bytes,
#: "up to the maximum length of an Ethernet frame").
DEFAULT_SIZES = (64, 128, 256, 400, 512, 700, 800, 1000, 1100, 1200, 1400,
                 1472)


def packet_size_sweep(max_payload=None):
    """Return the UDP payload sizes used on the x axis of Figures 2-7."""
    limit = MAX_PAYLOAD - IP_HEADER_LEN - UDP_HEADER_LEN
    if max_payload is None:
        max_payload = limit
    return tuple(s for s in DEFAULT_SIZES if s <= min(max_payload, limit))


class UdpWorkload:
    """Deterministic UDP traffic generator.

    Produces Ethernet frames carrying UDP packets of a fixed payload size,
    mirroring the benchmark of paper section 5.3.
    """

    def __init__(self, src_mac, dst_mac, payload_size,
                 src_ip=b"\x0a\x00\x00\x01", dst_ip=b"\x0a\x00\x00\x02",
                 src_port=9000, dst_port=9001):
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.payload_size = payload_size
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self._ident = 0

    def next_frame(self):
        """Build the next frame in the stream."""
        payload = bytes((self._ident + i) & 0xFF
                        for i in range(self.payload_size))
        packet = build_udp_packet(self.src_ip, self.dst_ip, self.src_port,
                                  self.dst_port, payload, ident=self._ident)
        self._ident = (self._ident + 1) & 0xFFFF
        if len(packet) < 46:
            packet += b"\0" * (46 - len(packet))
        return EthernetFrame(dst=self.dst_mac, src=self.src_mac,
                             ethertype=EtherType.IPV4, payload=packet)

    def frames(self, count):
        """Yield ``count`` frames."""
        for _ in range(count):
            yield self.next_frame()
