"""Ethernet framing."""

import enum
from dataclasses import dataclass

from repro.net.crc import crc32_ethernet

BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"

MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500
HEADER_LEN = 14


class EtherType(enum.IntEnum):
    """EtherType values used by the workloads (paper section 2 mentions
    ARP/IP/VLAN as the packet-type variety a send path branches on)."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100


def format_mac(mac):
    """Render a 6-byte MAC as ``aa:bb:cc:dd:ee:ff``."""
    if len(mac) != 6:
        raise ValueError("MAC must be 6 bytes")
    return ":".join("%02x" % b for b in mac)


def parse_mac(text):
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError("malformed MAC %r" % text)
    return bytes(int(p, 16) for p in parts)


def is_multicast(mac):
    """True for multicast (including broadcast) destination addresses."""
    return bool(mac[0] & 0x01)


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame (no FCS in ``payload``)."""

    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def to_bytes(self, with_fcs=False):
        """Serialize; optionally append the CRC-32 FCS."""
        if not MIN_PAYLOAD <= len(self.payload) <= MAX_PAYLOAD:
            raise ValueError("payload length %d out of range"
                             % len(self.payload))
        raw = (self.dst + self.src
               + self.ethertype.to_bytes(2, "big") + self.payload)
        if with_fcs:
            raw += crc32_ethernet(raw).to_bytes(4, "little")
        return raw

    @classmethod
    def from_bytes(cls, raw):
        """Parse a frame without FCS."""
        if len(raw) < HEADER_LEN + MIN_PAYLOAD:
            raise ValueError("frame too short (%d bytes)" % len(raw))
        return cls(dst=bytes(raw[0:6]), src=bytes(raw[6:12]),
                   ethertype=int.from_bytes(raw[12:14], "big"),
                   payload=bytes(raw[14:]))

    def __len__(self):
        return HEADER_LEN + len(self.payload)
