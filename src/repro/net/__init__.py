"""Packet and network substrate: frames, checksums, workload generators,
and the fleet-scale switched fabric (:mod:`repro.net.fabric`)."""

from repro.net.crc import crc32_ethernet, crc32_ethernet_reference
from repro.net.ethernet import (
    BROADCAST_MAC,
    EtherType,
    EthernetFrame,
    format_mac,
    is_multicast,
    parse_mac,
)
from repro.net.packet import build_udp_packet, parse_udp_packet
from repro.net.medium import Medium
from repro.net.traffic import UdpWorkload, packet_size_sweep

__all__ = [
    "crc32_ethernet",
    "crc32_ethernet_reference",
    "BROADCAST_MAC",
    "EtherType",
    "EthernetFrame",
    "format_mac",
    "is_multicast",
    "parse_mac",
    "build_udp_packet",
    "parse_udp_packet",
    "Medium",
    "UdpWorkload",
    "packet_size_sweep",
]
