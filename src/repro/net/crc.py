"""Ethernet CRC-32 (IEEE 802.3), implemented from the polynomial.

Checksum computation is one of the paper's four function types
("OS-independent algorithms, such as checksum computation", section 4.2);
the binary drivers use a table-free bitwise variant of this same algorithm
so the synthesizer has a realistic pure-computation function to recover.

Two implementations live here on purpose.  :func:`crc32_ethernet` is the
hot path -- every frame the fabric switches pays it -- and delegates to
:func:`zlib.crc32`, which implements the same reflected 0xEDB88320
polynomial with 0xFFFFFFFF init and final xor in C.
:func:`crc32_ethernet_reference` keeps the table-free bitwise algorithm
the driver corpus embeds, both as executable documentation of what the
synthesizer recovers and as the oracle for the equivalence test.
"""

import zlib

_POLY = 0xEDB88320


def crc32_ethernet(data):
    """Compute the Ethernet FCS over ``data``; returns a 32-bit integer."""
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def crc32_ethernet_reference(data):
    """Table-free bitwise CRC-32, one byte at a time -- the algorithm the
    binary drivers carry.  Semantically identical to
    :func:`crc32_ethernet`; kept as the independent oracle."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF
