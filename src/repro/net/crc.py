"""Ethernet CRC-32 (IEEE 802.3), implemented from the polynomial.

Checksum computation is one of the paper's four function types
("OS-independent algorithms, such as checksum computation", section 4.2);
the binary drivers use a table-free bitwise variant of this same algorithm
so the synthesizer has a realistic pure-computation function to recover.
"""

_POLY = 0xEDB88320

_TABLE = []
for _byte in range(256):
    _crc = _byte
    for _ in range(8):
        _crc = (_crc >> 1) ^ (_POLY if _crc & 1 else 0)
    _TABLE.append(_crc)


def crc32_ethernet(data):
    """Compute the Ethernet FCS over ``data``; returns a 32-bit integer."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
