"""Instruction-by-instruction translation of R32 into IR."""

from repro.errors import DecodeError
from repro.isa.encoding import INSTR_SIZE, NO_REG, decode
from repro.isa.opcodes import Op
from repro.isa.registers import REG_SP
from repro.ir import nodes as N

_MASK32 = 0xFFFFFFFF

_ALU_TO_BIN = {
    Op.ADD: N.BinKind.ADD, Op.SUB: N.BinKind.SUB, Op.AND: N.BinKind.AND,
    Op.OR: N.BinKind.OR, Op.XOR: N.BinKind.XOR, Op.SHL: N.BinKind.SHL,
    Op.SHR: N.BinKind.SHR, Op.SAR: N.BinKind.SAR, Op.MUL: N.BinKind.MUL,
    Op.DIVU: N.BinKind.DIVU, Op.REMU: N.BinKind.REMU,
}

_BRANCH_TO_CMP = {
    Op.BEQ: N.CmpKind.EQ, Op.BNE: N.CmpKind.NE, Op.BLT: N.CmpKind.SLT,
    Op.BGE: N.CmpKind.SGE, Op.BLTU: N.CmpKind.ULT, Op.BGEU: N.CmpKind.UGE,
}

_LOAD_WIDTH = {Op.LD8: 1, Op.LD16: 2, Op.LD32: 4}
_STORE_WIDTH = {Op.ST8: 1, Op.ST16: 2, Op.ST32: 4}
_IN_WIDTH = {Op.IN8: 1, Op.IN16: 2, Op.IN32: 4}
_OUT_WIDTH = {Op.OUT8: 1, Op.OUT16: 2, Op.OUT32: 4}

#: Safety bound on instructions per translation block (straight-line code
#: without a terminator longer than this is pathological).
MAX_BLOCK_INSTRS = 512


class _Emitter:
    """Per-block temp allocator and op list."""

    def __init__(self):
        self.ops = []
        self.next_temp = 0

    def temp(self):
        t = self.next_temp
        self.next_temp += 1
        return t

    def emit(self, op):
        self.ops.append(op)
        return op

    def const(self, value):
        t = self.temp()
        self.emit(N.IrConst(t, value & _MASK32))
        return t

    def get_reg(self, reg):
        t = self.temp()
        self.emit(N.IrGetReg(t, reg))
        return t

    def set_reg(self, reg, src):
        self.emit(N.IrSetReg(reg, src))

    def bin(self, kind, a, b):
        t = self.temp()
        self.emit(N.IrBin(t, kind, a, b))
        return t

    def addr(self, base_reg, disp):
        base = self.get_reg(base_reg)
        if disp == 0:
            return base
        return self.bin(N.BinKind.ADD, base, self.const(disp))


def translate_block(read_code, pc):
    """Translate one block starting at guest address ``pc``.

    ``read_code(address, size)`` returns raw guest bytes.  Translation stops
    at the first control-flow-altering instruction (the terminator), exactly
    like QEMU's translator.
    """
    emitter = _Emitter()
    instr_addrs = []
    instr_spans = []
    current = pc
    for _ in range(MAX_BLOCK_INSTRS):
        try:
            raw = read_code(current, INSTR_SIZE)
            instr = decode(raw)
        except Exception:
            # A fetch/decode failure *past* the first instruction
            # truncates the block: the valid prefix executes and falls
            # through to the faulting address, whose own (re)translation
            # raises -- giving block execution exactly the per-step
            # interpreter's partial-effects-then-fault behaviour.
            if instr_addrs:
                break
            raise
        instr_addrs.append(current)
        next_pc = (current + INSTR_SIZE) & _MASK32
        span_start = len(emitter.ops)
        done = _translate_instr(emitter, instr, current, next_pc)
        instr_spans.append((span_start, len(emitter.ops)))
        current = next_pc
        if done:
            break
    else:
        raise DecodeError("translation block at 0x%08x exceeds %d instrs"
                          % (pc, MAX_BLOCK_INSTRS))
    return N.TranslationBlock(pc=pc, size=current - pc,
                              instr_addrs=instr_addrs, ops=emitter.ops,
                              instr_spans=instr_spans)


def _translate_instr(em, instr, pc, next_pc):
    """Emit IR for one instruction; returns True when it terminates the
    block."""
    op = instr.op

    if op == Op.NOP:
        return False
    if op == Op.HALT:
        em.emit(N.IrHalt())
        return True
    if op == Op.MOV:
        em.set_reg(instr.a, em.get_reg(instr.b))
        return False
    if op == Op.MOVI:
        em.set_reg(instr.a, em.const(instr.imm))
        return False
    if op in _LOAD_WIDTH:
        address = em.addr(instr.b, instr.imm)
        t = em.temp()
        em.emit(N.IrLoad(t, address, _LOAD_WIDTH[op]))
        em.set_reg(instr.a, t)
        return False
    if op in _STORE_WIDTH:
        address = em.addr(instr.a, instr.imm)
        em.emit(N.IrStore(address, em.get_reg(instr.b), _STORE_WIDTH[op]))
        return False
    if op == Op.PUSH:
        sp = em.get_reg(REG_SP)
        new_sp = em.bin(N.BinKind.SUB, sp, em.const(4))
        em.set_reg(REG_SP, new_sp)
        em.emit(N.IrStore(new_sp, em.get_reg(instr.a), 4))
        return False
    if op == Op.POP:
        sp = em.get_reg(REG_SP)
        t = em.temp()
        em.emit(N.IrLoad(t, sp, 4))
        em.set_reg(instr.a, t)
        em.set_reg(REG_SP, em.bin(N.BinKind.ADD, sp, em.const(4)))
        return False
    if op in _ALU_TO_BIN:
        a = em.get_reg(instr.b)
        b = em.const(instr.imm) if instr.c == NO_REG else em.get_reg(instr.c)
        em.set_reg(instr.a, em.bin(_ALU_TO_BIN[op], a, b))
        return False
    if op == Op.NOT:
        t = em.temp()
        em.emit(N.IrNot(t, em.get_reg(instr.b)))
        em.set_reg(instr.a, t)
        return False
    if op == Op.NEG:
        t = em.temp()
        em.emit(N.IrNeg(t, em.get_reg(instr.b)))
        em.set_reg(instr.a, t)
        return False
    if op in _BRANCH_TO_CMP:
        a = em.get_reg(instr.a)
        b = em.get_reg(instr.b)
        t = em.temp()
        em.emit(N.IrCmp(t, _BRANCH_TO_CMP[op], a, b))
        em.emit(N.IrCondJump(t, instr.imm, next_pc))
        return True
    if op == Op.JMP:
        em.emit(N.IrJump(instr.imm, indirect=False))
        return True
    if op == Op.JMPR:
        em.emit(N.IrJump(em.get_reg(instr.a), indirect=True))
        return True
    if op == Op.CALL or op == Op.CALLR:
        # Explicit return-address push, then the call terminator.
        sp = em.get_reg(REG_SP)
        new_sp = em.bin(N.BinKind.SUB, sp, em.const(4))
        em.set_reg(REG_SP, new_sp)
        em.emit(N.IrStore(new_sp, em.const(next_pc), 4))
        if op == Op.CALL:
            em.emit(N.IrCall(instr.imm, indirect=False, return_pc=next_pc))
        else:
            em.emit(N.IrCall(em.get_reg(instr.a), indirect=True,
                             return_pc=next_pc))
        return True
    if op == Op.RET:
        sp = em.get_reg(REG_SP)
        t = em.temp()
        em.emit(N.IrLoad(t, sp, 4))
        em.set_reg(REG_SP, em.bin(N.BinKind.ADD, sp,
                                  em.const(4 + instr.imm)))
        em.emit(N.IrRet(t, instr.imm))
        return True
    if op in _IN_WIDTH:
        port = em.addr(instr.b, instr.imm)
        t = em.temp()
        em.emit(N.IrIn(t, port, _IN_WIDTH[op]))
        em.set_reg(instr.a, t)
        return False
    if op in _OUT_WIDTH:
        port = em.addr(instr.a, instr.imm)
        em.emit(N.IrOut(port, em.get_reg(instr.b), _OUT_WIDTH[op]))
        return False
    raise DecodeError("cannot translate opcode %s at 0x%08x" % (op, pc))


class CodeWindow:
    """An immutable snapshot of loaded guest code.

    Captured by the engine at the end of a run (after relocation), it is a
    pure ``read_code`` source: the synthesizer's missing-block fallback can
    force translation at any address inside the window without a live
    machine or engine -- which is what makes reverse-engineering results
    serializable (see :mod:`repro.pipeline.artifact`).
    """

    __slots__ = ("base", "data")

    def __init__(self, base, data):
        self.base = base
        self.data = bytes(data)

    @property
    def size(self):
        return len(self.data)

    def read(self, address, size):
        """Raw code bytes at guest ``address`` (zero-filled past the end)."""
        offset = address - self.base
        if offset < 0:
            raise DecodeError("address 0x%08x below code window" % address)
        chunk = self.data[offset:offset + size]
        if len(chunk) < size:
            chunk += b"\x00" * (size - len(chunk))
        return chunk

    def translator(self):
        """A fresh caching :class:`Translator` over this window."""
        return Translator(self.read)


class Translator:
    """Caching DBT front end.

    Cached blocks are validated against the *entire* current code bytes of
    the block before being served, so self-modifying or reloaded code
    retranslates ("the DBT cannot translate all the code at once, because
    the code may not be available in advance").  Checking only the first
    instruction is not enough: a patch landing past a block's first
    instruction would otherwise keep serving the stale translation.
    """

    def __init__(self, read_code):
        self._read_code = read_code
        self._cache = {}

    def get(self, pc):
        """Translate (or fetch from cache) the block at ``pc``."""
        current = None
        cached = self._cache.get(pc)
        if cached is not None:
            block, raw = cached
            current = bytes(self._read_code(pc, block.size))
            if current == raw:
                return block
        block = translate_block(self._read_code, pc)
        if current is None or len(current) != block.size:
            current = bytes(self._read_code(pc, block.size))
        self._cache[pc] = (block, current)
        return block

    def invalidate(self):
        self._cache.clear()
