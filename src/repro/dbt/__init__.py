"""Dynamic binary translator: R32 machine code -> IR translation blocks.

The paper's analog: "RevNIC passes the driver code to a dynamic binary
translator (DBT) to generate equivalent blocks of LLVM bitcode ... QEMU
passes the current program counter to the DBT, which translates the code
until it finds an instruction altering the control flow" (section 3.4).
"""

from repro.dbt.translator import CodeWindow, Translator, translate_block

__all__ = ["CodeWindow", "Translator", "translate_block"]
